(** Regenerate the paper's Figures 1–3 (§3.6, §3.7): disassembly of a
    guest block into tree IR, Memcheck-instrumented flat IR, and
    register allocation before/after — on the VG32 analogue of the
    paper's three-instruction x86 example:

    {v
    0x24F275:  movl -16180(%ebx,%eax,4),%eax  ->  ldw r0, [r3+r0*4-16180]
    0x24F27C:  addl %ebx,%eax                 ->  add r0, r3
    0x24F27E:  jmp*l %eax                     ->  jmp* r0
    v} *)

(* the paper's block, at the paper's address *)
let example_src =
  {|
        .text
        .global _start
_start: ldw r0, [r3+r0*4-16180]
        add r0, r3
        jmp* r0
|}

let example_image () =
  Guest.Asm.assemble ~text_base:0x24F275L example_src

(* A Memcheck session prepared far enough to give us its instrumenter. *)
let memcheck_session (img : Guest.Image.t) =
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool img in
  Vg_core.Session.startup s;
  s

let phases_with ~instrument (s : Vg_core.Session.t) =
  let fetch a = Aspace.fetch_u8 s.mem a in
  Jit.Pipeline.translate_phases ~fetch ~instrument 0x24F275L

let fig1 () =
  Harness.section
    "Figure 1: Disassembly — machine code -> tree IR (phase 1)";
  let img = example_image () in
  let s = memcheck_session img in
  let ph, _ = phases_with ~instrument:Jit.Pipeline.no_instrument s in
  Printf.printf "Guest code at 0x24F275 (the paper's example, in VG32):\n";
  Printf.printf "  0x24F275: ldw r0, [r3+r0*4-16180]\n";
  Printf.printf "  0x24F27C: add r0, r3\n";
  Printf.printf "  0x24F27E: jmp* r0\n\n";
  Printf.printf "Tree IR (unoptimised, %d statements):\n\n"
    (Support.Vec.length ph.p_tree.stmts);
  Format.printf "%a@." Vex_ir.Pp.pp_block ph.p_tree;
  Printf.printf
    "\nAfter optimisation phase 2 (flattening, redundant GET/PUT\n\
     elimination, copy/const propagation, dead code — note the removed\n\
     eip PUTs, kept only where a memory exception could observe them):\n\n";
  Format.printf "%a@." Vex_ir.Pp.pp_block ph.p_flat

let fig2 () =
  Harness.section
    "Figure 2: Memcheck-instrumented flat IR (phase 3 + phase 4)";
  let img = example_image () in
  let s = memcheck_session img in
  (* pre-instrumentation statement counts come from an uninstrumented run *)
  let ph0, _ = phases_with ~instrument:Jit.Pipeline.no_instrument s in
  let instr = Vg_core.Session.instrument_fn s in
  let ph, _ = phases_with ~instrument:instr s in
  let pre = Support.Vec.length ph0.p_flat.stmts in
  let mid = Support.Vec.length ph.p_instrumented.stmts in
  let post = Support.Vec.length ph.p_opt2.stmts in
  Printf.printf
    "Statements: %d before instrumentation, %d after Memcheck+stack-events\n\
     instrumentation, %d after optimisation phase 4.\n\
     (Paper: Memcheck's instrumented block went 48 -> 18 after opt2;\n\
     most added statements are shadow operations.)\n\n"
    pre mid post;
  Printf.printf "Instrumented and re-optimised IR:\n\n";
  Format.printf "%a@." Vex_ir.Pp.pp_block ph.p_opt2

let fig3 () =
  Harness.section
    "Figure 3: Register allocation — before (virtual regs) and after";
  let img = example_image () in
  let s = memcheck_session img in
  let instr = Vg_core.Session.instrument_fn s in
  let ph, _ = phases_with ~instrument:instr s in
  Printf.printf
    "Instruction selection output (virtual registers %%hNN, NN >= 16):\n\n";
  List.iter
    (fun vi ->
      match vi with
      | Jit.Isel.V i -> Format.printf "    %a@." Host.Arch.pp_insn i
      | Jit.Isel.VCall { callee; args; dst } ->
          Format.printf "    call %s(%s)%s@." callee.Vex_ir.Ir.c_name
            (String.concat "," (List.map (Printf.sprintf "%%h%d") args))
            (match dst with Some d -> Printf.sprintf " -> %%h%d" d | None -> ""))
    ph.p_vcode;
  Printf.printf
    "\nAfter linear-scan allocation (phase 7; note coalesced moves and\n\
     the GSP %%h15 as the ThreadState base):\n\n";
  List.iter (fun i -> Format.printf "    %a@." Host.Arch.pp_insn i) ph.p_hcode;
  Printf.printf "\nAssembled size: %d bytes of VH64 code for %d guest bytes.\n"
    (Bytes.length ph.p_bytes) 9
