(** Minimal growable array, used for IR temp-type environments and
    statement lists where the JIT appends heavily. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) dummy =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let push t v =
  if t.len = Array.length t.data then begin
    let nd = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let to_list t = List.init t.len (fun i -> t.data.(i))
let of_list dummy l =
  let t = create ~capacity:(max 1 (List.length l)) dummy in
  List.iter (push t) l;
  t

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let copy t = { data = Array.sub t.data 0 (max 1 t.len); len = t.len; dummy = t.dummy }
let clear t = t.len <- 0
