lib/support/v128.ml: Bits Fmt Int64
