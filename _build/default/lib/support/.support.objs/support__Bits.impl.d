lib/support/bits.ml: Fmt Int64
