lib/support/buf.ml: Bits Bytes Char Int64
