(** 128-bit SIMD values, represented as a pair of 64-bit halves.

    The guest VG32 ISA has four V128 registers and the IR has a V128 type;
    shadow-value tools must be able to shadow them bit-for-bit (requirement
    R1 of the paper: Pin's lack of 128-bit virtual registers is called out
    as preventing full Memcheck-style shadowing). *)

type t = { lo : int64; hi : int64 }

let zero = { lo = 0L; hi = 0L }
let ones = { lo = -1L; hi = -1L }
let make ~lo ~hi = { lo; hi }
let lo t = t.lo
let hi t = t.hi
let equal a b = a.lo = b.lo && a.hi = b.hi

(** Build from a 16-bit pattern: bit [i] set means byte [i] is 0xFF.
    This mirrors VEX's [Ico_V128] constant representation. *)
let of_pattern16 p =
  let byte i = if (p lsr i) land 1 = 1 then 0xFFL else 0L in
  let word lo_bit =
    let rec go acc i =
      if i = 8 then acc
      else go (Int64.logor acc (Int64.shift_left (byte (lo_bit + i)) (8 * i))) (i + 1)
    in
    go 0L 0
  in
  { lo = word 0; hi = word 8 }

let logand a b = { lo = Int64.logand a.lo b.lo; hi = Int64.logand a.hi b.hi }
let logor a b = { lo = Int64.logor a.lo b.lo; hi = Int64.logor a.hi b.hi }
let logxor a b = { lo = Int64.logxor a.lo b.lo; hi = Int64.logxor a.hi b.hi }
let lognot a = { lo = Int64.lognot a.lo; hi = Int64.lognot a.hi }

(** [get_lane32 t i] extracts 32-bit lane [i] (0..3), zero-extended. *)
let get_lane32 t i =
  let half = if i < 2 then t.lo else t.hi in
  Bits.trunc32 (Int64.shift_right_logical half (32 * (i land 1)))

(** [set_lane32 t i v] replaces 32-bit lane [i]. *)
let set_lane32 t i v =
  let v = Bits.trunc32 v in
  let upd half sh =
    Int64.logor
      (Int64.logand half (Int64.lognot (Int64.shift_left 0xFFFF_FFFFL sh)))
      (Int64.shift_left v sh)
  in
  if i < 2 then { t with lo = upd t.lo (32 * i) }
  else { t with hi = upd t.hi (32 * (i - 2)) }

(** Lane-wise binary op over the four 32-bit lanes. *)
let map2_32 f a b =
  let lane i = Bits.trunc32 (f (get_lane32 a i) (get_lane32 b i)) in
  {
    lo = Int64.logor (lane 0) (Int64.shift_left (lane 1) 32);
    hi = Int64.logor (lane 2) (Int64.shift_left (lane 3) 32);
  }

let add32x4 = map2_32 Int64.add
let sub32x4 = map2_32 Int64.sub
let cmpeq32x4 = map2_32 (fun a b -> if a = b then 0xFFFF_FFFFL else 0L)

(** Lane-wise binary op over the sixteen 8-bit lanes. *)
let map2_8 f a b =
  let byte src i =
    let half = if i < 8 then src.lo else src.hi in
    Bits.trunc8 (Int64.shift_right_logical half (8 * (i land 7)))
  in
  let half base =
    let rec go acc i =
      if i = 8 then acc
      else
        let v = Bits.trunc8 (f (byte a (base + i)) (byte b (base + i))) in
        go (Int64.logor acc (Int64.shift_left v (8 * i))) (i + 1)
    in
    go 0L 0
  in
  { lo = half 0; hi = half 8 }

let add8x16 = map2_8 Int64.add
let sub8x16 = map2_8 Int64.sub

(** Broadcast the low 32 bits of [v] to all four lanes. *)
let splat32 v =
  let v = Bits.trunc32 v in
  let w = Int64.logor v (Int64.shift_left v 32) in
  { lo = w; hi = w }

let pp ppf t = Fmt.pf ppf "0x%016LX:%016LX" t.hi t.lo
