(** Growable little-endian byte buffer.

    Used by both instruction encoders (guest VG32 and host VH64): phase 8 of
    the JIT "simply encodes the selected instructions appropriately and
    writes them to a block of memory" — this is the block being written. *)

type t = { mutable data : Bytes.t; mutable len : int }

let create ?(capacity = 64) () = { data = Bytes.create (max 8 capacity); len = 0 }

let length t = t.len

let ensure t extra =
  let need = t.len + extra in
  if need > Bytes.length t.data then begin
    let cap = ref (Bytes.length t.data) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nd = Bytes.create !cap in
    Bytes.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

(** Append one byte (low 8 bits of [b]). *)
let u8 t b =
  ensure t 1;
  Bytes.unsafe_set t.data t.len (Char.unsafe_chr (b land 0xFF));
  t.len <- t.len + 1

(** Append a 16-bit little-endian value. *)
let u16 t v =
  u8 t (v land 0xFF);
  u8 t ((v lsr 8) land 0xFF)

(** Append a 32-bit little-endian value taken from the low bits of [v]. *)
let u32 t (v : int64) =
  let v = Int64.to_int (Bits.trunc32 v) in
  u8 t v;
  u8 t (v lsr 8);
  u8 t (v lsr 16);
  u8 t (v lsr 24)

(** Append a 64-bit little-endian value. *)
let u64 t (v : int64) =
  u32 t v;
  u32 t (Int64.shift_right_logical v 32)

(** Contents so far, as fresh [Bytes.t]. *)
let contents t = Bytes.sub t.data 0 t.len

(** Overwrite the 32-bit LE value at [pos] (for branch back-patching). *)
let patch_u32 t pos (v : int64) =
  let v = Int64.to_int (Bits.trunc32 v) in
  Bytes.set t.data pos (Char.chr (v land 0xFF));
  Bytes.set t.data (pos + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set t.data (pos + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set t.data (pos + 3) (Char.chr ((v lsr 24) land 0xFF))

(** {2 Reading back} *)

(** [read_u8 b pos] reads an unsigned byte from raw [Bytes.t]. *)
let read_u8 (b : Bytes.t) pos = Char.code (Bytes.get b pos)

let read_u16 b pos = read_u8 b pos lor (read_u8 b (pos + 1) lsl 8)

let read_u32 b pos : int64 =
  let a = read_u8 b pos
  and b1 = read_u8 b (pos + 1)
  and c = read_u8 b (pos + 2)
  and d = read_u8 b (pos + 3) in
  Int64.of_int (a lor (b1 lsl 8) lor (c lsl 16) lor (d lsl 24))

let read_u64 b pos : int64 =
  Int64.logor (read_u32 b pos) (Int64.shift_left (read_u32 b (pos + 4)) 32)
