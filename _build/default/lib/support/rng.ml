(** Small deterministic PRNG (splitmix64) for workload generators.

    Benchmarks must be reproducible run-to-run (the paper's Table 2 is a set
    of deterministic SPEC runs), so none of the workload generators use
    [Random]; they all take a seed and use this generator. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.unsigned_rem (next_u64 t) (Int64.of_int bound))

let bool t = Int64.logand (next_u64 t) 1L = 1L
let float t = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) /. 9007199254740992.0
