(** Bit-twiddling helpers shared by the guest and host machine models.

    All machine values are carried in OCaml [int64]: a guest 32-bit word
    lives in the low 32 bits (zero-extended), bytes/halfwords likewise.
    These helpers provide the truncations, extensions and float
    reinterpretations the interpreters and the JIT need. *)

let mask8 = 0xFFL
let mask16 = 0xFFFFL
let mask32 = 0xFFFF_FFFFL

(** [trunc8 x] keeps the low 8 bits, zero-extended. *)
let trunc8 x = Int64.logand x mask8

(** [trunc16 x] keeps the low 16 bits, zero-extended. *)
let trunc16 x = Int64.logand x mask16

(** [trunc32 x] keeps the low 32 bits, zero-extended. *)
let trunc32 x = Int64.logand x mask32

(** [sext8 x] sign-extends bit 7 of [x] to 64 bits. *)
let sext8 x =
  let x = trunc8 x in
  if Int64.logand x 0x80L <> 0L then Int64.logor x (Int64.lognot mask8) else x

(** [sext16 x] sign-extends bit 15 of [x] to 64 bits. *)
let sext16 x =
  let x = trunc16 x in
  if Int64.logand x 0x8000L <> 0L then Int64.logor x (Int64.lognot mask16)
  else x

(** [sext32 x] sign-extends bit 31 of [x] to 64 bits. *)
let sext32 x =
  let x = trunc32 x in
  if Int64.logand x 0x8000_0000L <> 0L then Int64.logor x (Int64.lognot mask32)
  else x

(** 32-bit signed compare of the low words of [a] and [b]. *)
let cmp32s a b = Int64.compare (sext32 a) (sext32 b)

(** 32-bit unsigned compare of the low words of [a] and [b]. *)
let cmp32u a b = Int64.unsigned_compare (trunc32 a) (trunc32 b)

(** [bool64 b] is 1 if [b] else 0. *)
let bool64 b = if b then 1L else 0L

(** [to_bool x] is true iff [x] is non-zero. *)
let to_bool x = x <> 0L

(** Reinterpret the 64 bits of [x] as an IEEE754 double. *)
let float_of_bits = Int64.float_of_bits

(** Reinterpret an IEEE754 double as its 64 bits. *)
let bits_of_float = Int64.bits_of_float

(** 32-bit left shift (amount masked to 5 bits), result zero-extended. *)
let shl32 x n = trunc32 (Int64.shift_left (trunc32 x) (Int64.to_int n land 31))

(** 32-bit logical right shift (amount masked to 5 bits). *)
let shr32 x n =
  trunc32 (Int64.shift_right_logical (trunc32 x) (Int64.to_int n land 31))

(** 32-bit arithmetic right shift (amount masked to 5 bits). *)
let sar32 x n =
  trunc32 (Int64.shift_right (sext32 x) (Int64.to_int n land 31))

(** 64-bit shifts with the amount masked to 6 bits. *)
let shl64 x n = Int64.shift_left x (Int64.to_int n land 63)

let shr64 x n = Int64.shift_right_logical x (Int64.to_int n land 63)
let sar64 x n = Int64.shift_right x (Int64.to_int n land 63)

(** Count leading zeros of the low 32 bits (32 if zero). *)
let clz32 x =
  let x = trunc32 x in
  if x = 0L then 32L
  else
    let rec go n bit =
      if Int64.logand x (Int64.shift_left 1L bit) <> 0L then Int64.of_int n
      else go (n + 1) (bit - 1)
    in
    go 0 31

(** Count trailing zeros of the low 32 bits (32 if zero). *)
let ctz32 x =
  let x = trunc32 x in
  if x = 0L then 32L
  else
    let rec go n = if Int64.logand x (Int64.shift_left 1L n) <> 0L then Int64.of_int n else go (n + 1) in
    go 0

(** Low 32 bits of [x] formatted as [0xXXXXXXXX]. *)
let pp_hex32 ppf x = Fmt.pf ppf "0x%08LX" (trunc32 x)

(** All 64 bits of [x] formatted as [0xXXXXXXXXXXXXXXXX]. *)
let pp_hex64 ppf x = Fmt.pf ppf "0x%016LX" x
