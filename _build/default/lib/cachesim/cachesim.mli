(** Set-associative cache simulator — the substrate behind Cachegrind.

    Models the classic I1/D1/unified-L2 hierarchy with LRU replacement
    and no timing (Cachegrind counts events, not cycles). *)

type config = { size : int; line_size : int; assoc : int }

(** Cachegrind's historical defaults: I1/D1 64KB 64B 2-way, L2 256KB 64B
    8-way. *)
val default_i1 : config

val default_d1 : config
val default_l2 : config

(** One cache level. *)
type t = {
  cfg : config;
  n_sets : int;
  line_shift : int;
  tags : int64 array;
  lru : int array;
  mutable clock : int;
  mutable accesses : int64;
  mutable misses : int64;
}

(** [create cfg] builds an empty cache.  Raises [Invalid_argument] if
    [cfg.size] is not a multiple of [line_size * assoc]. *)
val create : config -> t

(** [access t addr size] touches [size] bytes at [addr]; returns [true]
    iff every touched line hit (an access straddling a line boundary
    probes both lines). *)
val access : t -> int64 -> int -> bool

(** Fraction of accesses that missed so far. *)
val miss_rate : t -> float

(** The I1/D1/L2 hierarchy Cachegrind models, with the nine counters the
    cg summary reports. *)
type hierarchy = {
  i1 : t;
  d1 : t;
  l2 : t;
  mutable ir : int64;
  mutable i1_misses : int64;
  mutable l2i_misses : int64;
  mutable dr : int64;
  mutable d1r_misses : int64;
  mutable l2dr_misses : int64;
  mutable dw : int64;
  mutable d1w_misses : int64;
  mutable l2dw_misses : int64;
}

val create_hierarchy :
  ?i1:config -> ?d1:config -> ?l2:config -> unit -> hierarchy

(** Record an instruction fetch / data read / data write of [size] bytes
    at an address, cascading D1/I1 misses into L2. *)
val instr_fetch : hierarchy -> int64 -> int -> unit

val data_read : hierarchy -> int64 -> int -> unit
val data_write : hierarchy -> int64 -> int -> unit

(** Cachegrind-style textual summary. *)
val summary : hierarchy -> string
