(** Set-associative cache simulator — the substrate behind Cachegrind.

    Models the classic I1/D1/unified-L2 hierarchy with LRU replacement,
    write-allocate, and no timing (Cachegrind counts events, not
    cycles). *)

type config = { size : int; line_size : int; assoc : int }

(** Cachegrind's historical defaults. *)
let default_i1 = { size = 65536; line_size = 64; assoc = 2 }

let default_d1 = { size = 65536; line_size = 64; assoc = 2 }
let default_l2 = { size = 262144; line_size = 64; assoc = 8 }

type t = {
  cfg : config;
  n_sets : int;
  line_shift : int;
  tags : int64 array;  (** n_sets * assoc; -1 = invalid *)
  lru : int array;  (** per way: higher = more recently used *)
  mutable clock : int;
  mutable accesses : int64;
  mutable misses : int64;
}

let log2i n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create (cfg : config) : t =
  if cfg.size mod (cfg.line_size * cfg.assoc) <> 0 then
    invalid_arg "Cachesim.create: size must be a multiple of line*assoc";
  let n_sets = cfg.size / (cfg.line_size * cfg.assoc) in
  {
    cfg;
    n_sets;
    line_shift = log2i cfg.line_size;
    tags = Array.make (n_sets * cfg.assoc) Int64.minus_one;
    lru = Array.make (n_sets * cfg.assoc) 0;
    clock = 0;
    accesses = 0L;
    misses = 0L;
  }

(* probe one line address; returns true on hit *)
let access_line (t : t) (line : int64) : bool =
  t.accesses <- Int64.add t.accesses 1L;
  t.clock <- t.clock + 1;
  let set = Int64.to_int (Int64.unsigned_rem line (Int64.of_int t.n_sets)) in
  let base = set * t.cfg.assoc in
  let rec find w = if w = t.cfg.assoc then None
    else if t.tags.(base + w) = line then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
      t.lru.(base + w) <- t.clock;
      true
  | None ->
      t.misses <- Int64.add t.misses 1L;
      (* evict LRU way *)
      let victim = ref 0 in
      for w = 1 to t.cfg.assoc - 1 do
        if t.lru.(base + w) < t.lru.(base + !victim) then victim := w
      done;
      t.tags.(base + !victim) <- line;
      t.lru.(base + !victim) <- t.clock;
      false

(** Access [size] bytes at [addr]; returns true if every touched line
    hit (an access straddling a line boundary probes both lines). *)
let access (t : t) (addr : int64) (size : int) : bool =
  let first = Int64.shift_right_logical addr t.line_shift in
  let last =
    Int64.shift_right_logical
      (Int64.add addr (Int64.of_int (max 0 (size - 1))))
      t.line_shift
  in
  let hit1 = access_line t first in
  if last <> first then access_line t last && hit1 else hit1

let miss_rate (t : t) : float =
  if t.accesses = 0L then 0.0
  else Int64.to_float t.misses /. Int64.to_float t.accesses

(** A two-level hierarchy as Cachegrind models it. *)
type hierarchy = {
  i1 : t;
  d1 : t;
  l2 : t;
  mutable ir : int64;  (** instructions *)
  mutable i1_misses : int64;
  mutable l2i_misses : int64;
  mutable dr : int64;
  mutable d1r_misses : int64;
  mutable l2dr_misses : int64;
  mutable dw : int64;
  mutable d1w_misses : int64;
  mutable l2dw_misses : int64;
}

let create_hierarchy ?(i1 = default_i1) ?(d1 = default_d1) ?(l2 = default_l2)
    () : hierarchy =
  {
    i1 = create i1;
    d1 = create d1;
    l2 = create l2;
    ir = 0L;
    i1_misses = 0L;
    l2i_misses = 0L;
    dr = 0L;
    d1r_misses = 0L;
    l2dr_misses = 0L;
    dw = 0L;
    d1w_misses = 0L;
    l2dw_misses = 0L;
  }

let instr_fetch (h : hierarchy) (addr : int64) (size : int) =
  h.ir <- Int64.add h.ir 1L;
  if not (access h.i1 addr size) then begin
    h.i1_misses <- Int64.add h.i1_misses 1L;
    if not (access h.l2 addr size) then
      h.l2i_misses <- Int64.add h.l2i_misses 1L
  end

let data_read (h : hierarchy) (addr : int64) (size : int) =
  h.dr <- Int64.add h.dr 1L;
  if not (access h.d1 addr size) then begin
    h.d1r_misses <- Int64.add h.d1r_misses 1L;
    if not (access h.l2 addr size) then
      h.l2dr_misses <- Int64.add h.l2dr_misses 1L
  end

let data_write (h : hierarchy) (addr : int64) (size : int) =
  h.dw <- Int64.add h.dw 1L;
  if not (access h.d1 addr size) then begin
    h.d1w_misses <- Int64.add h.d1w_misses 1L;
    if not (access h.l2 addr size) then
      h.l2dw_misses <- Int64.add h.l2dw_misses 1L
  end

let summary (h : hierarchy) : string =
  let pct a b = if b = 0L then 0.0 else 100.0 *. Int64.to_float a /. Int64.to_float b in
  String.concat "\n"
    [
      Printf.sprintf "I   refs:      %Ld" h.ir;
      Printf.sprintf "I1  misses:    %Ld  (%.2f%%)" h.i1_misses (pct h.i1_misses h.ir);
      Printf.sprintf "L2i misses:    %Ld  (%.2f%%)" h.l2i_misses (pct h.l2i_misses h.ir);
      Printf.sprintf "D   reads:     %Ld" h.dr;
      Printf.sprintf "D1  rd misses: %Ld  (%.2f%%)" h.d1r_misses (pct h.d1r_misses h.dr);
      Printf.sprintf "D   writes:    %Ld" h.dw;
      Printf.sprintf "D1  wr misses: %Ld  (%.2f%%)" h.d1w_misses (pct h.d1w_misses h.dw);
      Printf.sprintf "L2d misses:    %Ld"
        (Int64.add h.l2dr_misses h.l2dw_misses);
      "";
    ]
