(** Reference evaluator for IR blocks.

    This is not on the execution fast path — the JIT's phases 5–8 compile
    IR to host code for that.  The evaluator exists as a second, obviously-
    correct semantics used for differential testing: the disassembler
    (guest code → IR → this evaluator) must agree with the guest reference
    interpreter, and the back-end (IR → host code → host interpreter) must
    agree with this evaluator.  Any disagreement localises a JIT bug to one
    side of the IR, which is the verifiability benefit of D&R the paper
    describes in §3.5. *)

open Ir

type value = VI of int64 | VF of float | VV of Support.V128.t

exception Eval_error of string

let err fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let as_i = function VI v -> v | _ -> err "expected integer value"
let as_f = function VF f -> f | _ -> err "expected F64 value"
let as_v = function VV v -> v | _ -> err "expected V128 value"

(** Normalise an integer to its type's width (I1 -> 0/1). *)
let norm ty v =
  match ty with
  | I1 -> if v = 0L then 0L else 1L
  | I8 -> Support.Bits.trunc8 v
  | I16 -> Support.Bits.trunc16 v
  | I32 -> Support.Bits.trunc32 v
  | I64 -> v
  | F64 | V128 -> err "norm on non-integer type"

let const_value = function
  | CI1 b -> VI (if b then 1L else 0L)
  | CI8 v -> VI (Int64.of_int (v land 0xFF))
  | CI16 v -> VI (Int64.of_int (v land 0xFFFF))
  | CI32 v -> VI (Support.Bits.trunc32 v)
  | CI64 v -> VI v
  | CF64 f -> VF f
  | CV128 p -> VV (Support.V128.of_pattern16 p)

let eval_unop op a : value =
  let open Support in
  match op with
  | Not1 -> VI (Int64.logxor (as_i a) 1L)
  | Not32 -> VI (Bits.trunc32 (Int64.lognot (as_i a)))
  | Not64 -> VI (Int64.lognot (as_i a))
  | Neg32 -> VI (Bits.trunc32 (Int64.neg (as_i a)))
  | Neg64 -> VI (Int64.neg (as_i a))
  | U1to32 | U8to32 | U16to32 -> VI (as_i a)
  | S8to32 -> VI (Bits.trunc32 (Bits.sext8 (as_i a)))
  | S16to32 -> VI (Bits.trunc32 (Bits.sext16 (as_i a)))
  | U32to64 -> VI (as_i a)
  | S32to64 -> VI (Bits.sext32 (as_i a))
  | T64to32 -> VI (Bits.trunc32 (as_i a))
  | T32to8 -> VI (Bits.trunc8 (as_i a))
  | T32to16 -> VI (Bits.trunc16 (as_i a))
  | T32to1 -> VI (Int64.logand (as_i a) 1L)
  | CmpNEZ8 | CmpNEZ32 | CmpNEZ64 -> VI (Bits.bool64 (as_i a <> 0L))
  | CmpwNEZ32 -> VI (if as_i a = 0L then 0L else 0xFFFF_FFFFL)
  | CmpwNEZ64 -> VI (if as_i a = 0L then 0L else -1L)
  | Left32 ->
      let x = as_i a in
      VI (Bits.trunc32 (Int64.logor x (Int64.neg x)))
  | Left64 ->
      let x = as_i a in
      VI (Int64.logor x (Int64.neg x))
  | Clz32 -> VI (Bits.clz32 (as_i a))
  | Ctz32 -> VI (Bits.ctz32 (as_i a))
  | NegF64 -> VF (-.as_f a)
  | AbsF64 -> VF (Float.abs (as_f a))
  | SqrtF64 -> VF (Float.sqrt (as_f a))
  | I32StoF64 -> VF (Int64.to_float (Bits.sext32 (as_i a)))
  | F64toI32S -> VI (Bits.trunc32 (Int64.of_float (Float.trunc (as_f a))))
  | ReinterpF64asI64 -> VI (Bits.bits_of_float (as_f a))
  | ReinterpI64asF64 -> VF (Bits.float_of_bits (as_i a))
  | NotV128 -> VV (V128.lognot (as_v a))
  | V128to64 -> VI (V128.lo (as_v a))
  | V128HIto64 -> VI (V128.hi (as_v a))
  | Dup32x4 -> VV (V128.splat32 (as_i a))
  | CmpNEZ32x4 ->
      let v = as_v a in
      VV (V128.lognot (V128.cmpeq32x4 v V128.zero))

let eval_binop op x y : value =
  let open Support in
  let xi () = as_i x and yi () = as_i y in
  let xf () = as_f x and yf () = as_f y in
  let xv () = as_v x and yv () = as_v y in
  let b32 f = VI (Bits.trunc32 (f (xi ()) (yi ()))) in
  let c b = VI (Bits.bool64 b) in
  match op with
  | Add32 -> b32 Int64.add
  | Sub32 -> b32 Int64.sub
  | Mul32 -> b32 Int64.mul
  | MulHiS32 ->
      let p = Int64.mul (Bits.sext32 (xi ())) (Bits.sext32 (yi ())) in
      VI (Bits.trunc32 (Int64.shift_right p 32))
  | DivS32 ->
      let d = Bits.sext32 (yi ()) in
      if d = 0L then err "integer division by zero"
      else VI (Bits.trunc32 (Int64.div (Bits.sext32 (xi ())) d))
  | DivU32 ->
      let d = yi () in
      if d = 0L then err "integer division by zero"
      else VI (Bits.trunc32 (Int64.unsigned_div (xi ()) d))
  | And32 -> b32 Int64.logand
  | Or32 -> b32 Int64.logor
  | Xor32 -> b32 Int64.logxor
  | Shl32 -> VI (Bits.shl32 (xi ()) (yi ()))
  | Shr32 -> VI (Bits.shr32 (xi ()) (yi ()))
  | Sar32 -> VI (Bits.sar32 (xi ()) (yi ()))
  | CmpEQ32 -> c (xi () = yi ())
  | CmpNE32 -> c (xi () <> yi ())
  | CmpLT32S -> c (Bits.cmp32s (xi ()) (yi ()) < 0)
  | CmpLE32S -> c (Bits.cmp32s (xi ()) (yi ()) <= 0)
  | CmpLT32U -> c (Bits.cmp32u (xi ()) (yi ()) < 0)
  | CmpLE32U -> c (Bits.cmp32u (xi ()) (yi ()) <= 0)
  | Add64 -> VI (Int64.add (xi ()) (yi ()))
  | Sub64 -> VI (Int64.sub (xi ()) (yi ()))
  | Mul64 -> VI (Int64.mul (xi ()) (yi ()))
  | And64 -> VI (Int64.logand (xi ()) (yi ()))
  | Or64 -> VI (Int64.logor (xi ()) (yi ()))
  | Xor64 -> VI (Int64.logxor (xi ()) (yi ()))
  | Shl64 -> VI (Bits.shl64 (xi ()) (yi ()))
  | Shr64 -> VI (Bits.shr64 (xi ()) (yi ()))
  | Sar64 -> VI (Bits.sar64 (xi ()) (yi ()))
  | CmpEQ64 -> c (xi () = yi ())
  | CmpNE64 -> c (xi () <> yi ())
  | Cat32x2 ->
      VI (Int64.logor (Int64.shift_left (xi ()) 32) (Bits.trunc32 (yi ())))
  | AddF64 -> VF (xf () +. yf ())
  | SubF64 -> VF (xf () -. yf ())
  | MulF64 -> VF (xf () *. yf ())
  | DivF64 -> VF (xf () /. yf ())
  | MinF64 -> VF (Float.min (xf ()) (yf ()))
  | MaxF64 -> VF (Float.max (xf ()) (yf ()))
  | CmpEQF64 -> c (xf () = yf ())
  | CmpLTF64 -> c (xf () < yf ())
  | CmpLEF64 -> c (xf () <= yf ())
  | AndV128 -> VV (V128.logand (xv ()) (yv ()))
  | OrV128 -> VV (V128.logor (xv ()) (yv ()))
  | XorV128 -> VV (V128.logxor (xv ()) (yv ()))
  | Add32x4 -> VV (V128.add32x4 (xv ()) (yv ()))
  | Sub32x4 -> VV (V128.sub32x4 (xv ()) (yv ()))
  | CmpEQ32x4 -> VV (V128.cmpeq32x4 (xv ()) (yv ()))
  | Add8x16 -> VV (V128.add8x16 (xv ()) (yv ()))
  | Sub8x16 -> VV (V128.sub8x16 (xv ()) (yv ()))
  | Cat64x2 -> VV (Support.V128.make ~hi:(xi ()) ~lo:(yi ()))

(** How a block run terminated. *)
type outcome = { next_pc : int64; jumpkind : jumpkind }

(** Run block [b] against [env].  Guest-state accesses of width <= 8 go
    through [env]; F64/V128 guest accesses are split into 64-bit pieces. *)
let run (env : Helpers.env) (b : block) : outcome =
  let tmps = Array.make (Support.Vec.length b.tyenv) (VI 0L) in
  let get_state off ty =
    match ty with
    | V128 ->
        VV
          (Support.V128.make
             ~lo:(env.he_get_guest off 8)
             ~hi:(env.he_get_guest (off + 8) 8))
    | F64 -> VF (Support.Bits.float_of_bits (env.he_get_guest off 8))
    | I64 -> VI (env.he_get_guest off 8)
    | ty -> VI (norm ty (env.he_get_guest off (size_of_ty ty)))
  in
  let put_state off v =
    match v with
    | VV x ->
        env.he_put_guest off 8 (Support.V128.lo x);
        env.he_put_guest (off + 8) 8 (Support.V128.hi x)
    | VF f -> env.he_put_guest off 8 (Support.Bits.bits_of_float f)
    | VI x -> env.he_put_guest off 8 x
  in
  (* a PUT of a narrow type must not clobber neighbours: redo with size *)
  let put_state_ty off ty v =
    match (ty, v) with
    | (I8 | I16 | I32 | I64 | I1), VI x -> env.he_put_guest off (size_of_ty ty) x
    | _ -> put_state off v
  in
  let rec eval (e : expr) : value =
    match e with
    | Get (off, ty) -> get_state off ty
    | RdTmp t -> tmps.(t)
    | Const c -> const_value c
    | Load (ty, addr) -> (
        let a = as_i (eval addr) in
        match ty with
        | V128 ->
            VV
              (Support.V128.make ~lo:(env.he_load a 8)
                 ~hi:(env.he_load (Int64.add a 8L) 8))
        | F64 -> VF (Support.Bits.float_of_bits (env.he_load a 8))
        | ty -> VI (norm ty (env.he_load a (size_of_ty ty))))
    | Unop (op, a) -> eval_unop op (eval a)
    | Binop (op, x, y) -> eval_binop op (eval x) (eval y)
    | ITE (c, t, e) -> if as_i (eval c) <> 0L then eval t else eval e
    | CCall (callee, ty, args) ->
        let args = Array.of_list (List.map (fun a -> as_i (eval a)) args) in
        let r = Helpers.call callee.c_id env args in
        VI (norm (match ty with I32 -> I32 | _ -> I64) r)
  in
  let n = Support.Vec.length b.stmts in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i < n do
    (match Support.Vec.get b.stmts !i with
    | NoOp | IMark _ | AbiHint _ -> ()
    | Put (off, e) ->
        let ty = type_of b e in
        put_state_ty off ty (eval e)
    | WrTmp (t, e) -> tmps.(t) <- eval e
    | Store (a, d) -> (
        let addr = as_i (eval a) in
        match eval d with
        | VI v ->
            let ty = type_of b d in
            env.he_store addr (size_of_ty ty) v
        | VF f -> env.he_store addr 8 (Support.Bits.bits_of_float f)
        | VV v ->
            env.he_store addr 8 (Support.V128.lo v);
            env.he_store (Int64.add addr 8L) 8 (Support.V128.hi v))
    | Dirty d ->
        if as_i (eval d.d_guard) <> 0L then begin
          let args = Array.of_list (List.map (fun a -> as_i (eval a)) d.d_args) in
          let r = Helpers.call d.d_callee.c_id env args in
          match d.d_tmp with Some t -> tmps.(t) <- VI r | None -> ()
        end
    | Exit (g, jk, dest) ->
        if as_i (eval g) <> 0L then
          result := Some { next_pc = dest; jumpkind = jk });
    incr i
  done;
  match !result with
  | Some o -> o
  | None -> { next_pc = as_i (eval b.next); jumpkind = b.jumpkind }
