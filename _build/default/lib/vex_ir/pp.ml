(** Pretty-printer for the IR, in the style of the paper's Figures 1 and 2:
    [t0 = Add32(GET:I32(12),0x4:I32)], [PUT(0) = t1], IMark separators, and
    DIRTY calls with their guest-state effect annotations. *)

open Ir

let pp_ty ppf = function
  | I1 -> Fmt.string ppf "I1"
  | I8 -> Fmt.string ppf "I8"
  | I16 -> Fmt.string ppf "I16"
  | I32 -> Fmt.string ppf "I32"
  | I64 -> Fmt.string ppf "I64"
  | F64 -> Fmt.string ppf "F64"
  | V128 -> Fmt.string ppf "V128"

let pp_const ppf = function
  | CI1 b -> Fmt.pf ppf "%d:I1" (if b then 1 else 0)
  | CI8 v -> Fmt.pf ppf "0x%X:I8" (v land 0xFF)
  | CI16 v -> Fmt.pf ppf "0x%X:I16" (v land 0xFFFF)
  | CI32 v -> Fmt.pf ppf "0x%LX:I32" (Support.Bits.trunc32 v)
  | CI64 v -> Fmt.pf ppf "0x%LX:I64" v
  | CF64 f -> Fmt.pf ppf "F64{%h}" f
  | CV128 p -> Fmt.pf ppf "V128{0x%04X}" (p land 0xFFFF)

let unop_name = function
  | Not1 -> "Not1"
  | Not32 -> "Not32"
  | Not64 -> "Not64"
  | Neg32 -> "Neg32"
  | Neg64 -> "Neg64"
  | U1to32 -> "1Uto32"
  | U8to32 -> "8Uto32"
  | S8to32 -> "8Sto32"
  | U16to32 -> "16Uto32"
  | S16to32 -> "16Sto32"
  | U32to64 -> "32Uto64"
  | S32to64 -> "32Sto64"
  | T64to32 -> "64to32"
  | T32to8 -> "32to8"
  | T32to16 -> "32to16"
  | T32to1 -> "32to1"
  | CmpNEZ8 -> "CmpNEZ8"
  | CmpNEZ32 -> "CmpNEZ32"
  | CmpNEZ64 -> "CmpNEZ64"
  | CmpwNEZ32 -> "CmpwNEZ32"
  | CmpwNEZ64 -> "CmpwNEZ64"
  | Left32 -> "Left32"
  | Left64 -> "Left64"
  | Clz32 -> "Clz32"
  | Ctz32 -> "Ctz32"
  | NegF64 -> "NegF64"
  | AbsF64 -> "AbsF64"
  | SqrtF64 -> "SqrtF64"
  | I32StoF64 -> "I32StoF64"
  | F64toI32S -> "F64toI32S"
  | ReinterpF64asI64 -> "ReinterpF64asI64"
  | ReinterpI64asF64 -> "ReinterpI64asF64"
  | NotV128 -> "NotV128"
  | V128to64 -> "V128to64"
  | V128HIto64 -> "V128HIto64"
  | Dup32x4 -> "Dup32x4"
  | CmpNEZ32x4 -> "CmpNEZ32x4"

let binop_name = function
  | Add32 -> "Add32"
  | Sub32 -> "Sub32"
  | Mul32 -> "Mul32"
  | MulHiS32 -> "MulHiS32"
  | DivS32 -> "DivS32"
  | DivU32 -> "DivU32"
  | And32 -> "And32"
  | Or32 -> "Or32"
  | Xor32 -> "Xor32"
  | Shl32 -> "Shl32"
  | Shr32 -> "Shr32"
  | Sar32 -> "Sar32"
  | CmpEQ32 -> "CmpEQ32"
  | CmpNE32 -> "CmpNE32"
  | CmpLT32S -> "CmpLT32S"
  | CmpLE32S -> "CmpLE32S"
  | CmpLT32U -> "CmpLT32U"
  | CmpLE32U -> "CmpLE32U"
  | Add64 -> "Add64"
  | Sub64 -> "Sub64"
  | Mul64 -> "Mul64"
  | And64 -> "And64"
  | Or64 -> "Or64"
  | Xor64 -> "Xor64"
  | Shl64 -> "Shl64"
  | Shr64 -> "Shr64"
  | Sar64 -> "Sar64"
  | CmpEQ64 -> "CmpEQ64"
  | CmpNE64 -> "CmpNE64"
  | Cat32x2 -> "32HLto64"
  | AddF64 -> "AddF64"
  | SubF64 -> "SubF64"
  | MulF64 -> "MulF64"
  | DivF64 -> "DivF64"
  | MinF64 -> "MinF64"
  | MaxF64 -> "MaxF64"
  | CmpEQF64 -> "CmpEQF64"
  | CmpLTF64 -> "CmpLTF64"
  | CmpLEF64 -> "CmpLEF64"
  | AndV128 -> "AndV128"
  | OrV128 -> "OrV128"
  | XorV128 -> "XorV128"
  | Add32x4 -> "Add32x4"
  | Sub32x4 -> "Sub32x4"
  | CmpEQ32x4 -> "CmpEQ32x4"
  | Add8x16 -> "Add8x16"
  | Sub8x16 -> "Sub8x16"
  | Cat64x2 -> "64HLtoV128"

let jk_name = function
  | Jk_boring -> "Boring"
  | Jk_call -> "Call"
  | Jk_ret -> "Ret"
  | Jk_syscall -> "Sys"
  | Jk_clientreq -> "ClientReq"
  | Jk_yield -> "Yield"
  | Jk_sigill -> "SigILL"

let rec pp_expr ppf = function
  | Get (off, ty) -> Fmt.pf ppf "GET:%a(%d)" pp_ty ty off
  | RdTmp t -> Fmt.pf ppf "t%d" t
  | Load (ty, addr) -> Fmt.pf ppf "LDle:%a(%a)" pp_ty ty pp_expr addr
  | Const c -> pp_const ppf c
  | Unop (op, a) -> Fmt.pf ppf "%s(%a)" (unop_name op) pp_expr a
  | Binop (op, a, b) ->
      Fmt.pf ppf "%s(%a,%a)" (binop_name op) pp_expr a pp_expr b
  | ITE (c, t, e) ->
      Fmt.pf ppf "ITE(%a,%a,%a)" pp_expr c pp_expr t pp_expr e
  | CCall (c, ty, args) ->
      Fmt.pf ppf "%s:%a(%a)" c.c_name pp_ty ty
        (Fmt.list ~sep:Fmt.comma pp_expr)
        args

let pp_fx ppf (reads, writes) =
  List.iter (fun (o, s) -> Fmt.pf ppf " RdFX-gst(%d,%d)" o s) reads;
  List.iter (fun (o, s) -> Fmt.pf ppf " WrFX-gst(%d,%d)" o s) writes

let pp_stmt ppf = function
  | NoOp -> Fmt.string ppf "IR-NoOp"
  | IMark (addr, len) -> Fmt.pf ppf "------ IMark(0x%LX, %d) ------" addr len
  | AbiHint (e, len) -> Fmt.pf ppf "====== AbiHint(%a, %d) ======" pp_expr e len
  | Put (off, e) -> Fmt.pf ppf "PUT(%d) = %a" off pp_expr e
  | WrTmp (t, e) -> Fmt.pf ppf "t%d = %a" t pp_expr e
  | Store (a, d) -> Fmt.pf ppf "STle(%a) = %a" pp_expr a pp_expr d
  | Dirty d ->
      let dst = match d.d_tmp with Some t -> Fmt.str "t%d = " t | None -> "" in
      Fmt.pf ppf "%sDIRTY %a%a ::: %s(%a)" dst pp_expr d.d_guard pp_fx
        (d.d_callee.c_fx_reads, d.d_callee.c_fx_writes)
        d.d_callee.c_name
        (Fmt.list ~sep:Fmt.comma pp_expr)
        d.d_args
  | Exit (guard, jk, dest) ->
      Fmt.pf ppf "if (%a) goto {%s} 0x%LX" pp_expr guard (jk_name jk) dest

let pp_block ppf (b : block) =
  Support.Vec.iteri
    (fun i s -> Fmt.pf ppf "%3d: %a@." (i + 1) pp_stmt s)
    b.stmts;
  Fmt.pf ppf "     goto {%s} %a@." (jk_name b.jumpkind) pp_expr b.next

let block_to_string b = Fmt.str "%a" pp_block b
