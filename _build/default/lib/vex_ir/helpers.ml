(** Global registry of helper functions callable from IR.

    In the paper these are C functions inside Valgrind or the tool (e.g.
    [helperc_LOADV32le], [helperc_value_check4_fail], the x86
    condition-code calculators).  Here they are OCaml closures; each gets a
    stable integer id that the JIT bakes into generated host [CALL]
    instructions, and a declared cycle cost used by the host cost model
    (calling out of generated code is what makes "C call" analysis code
    slower than inline analysis code — ICntC vs ICntI in Table 2). *)

type env = {
  he_get_guest : int -> int -> int64;
      (** [he_get_guest off size] reads [size] bytes of the current
          thread's ThreadState at byte offset [off], little-endian. *)
  he_put_guest : int -> int -> int64 -> unit;
  he_load : int64 -> int -> int64;  (** client memory read *)
  he_store : int64 -> int -> int64 -> unit;  (** client memory write *)
}

(** A helper takes the environment and its (integer) arguments, and returns
    an integer result (0 for void helpers). *)
type fn = env -> int64 array -> int64

let table : fn array ref = ref (Array.make 0 (fun _ _ -> 0L))
let names : string array ref = ref [||]
let count = ref 0

(** Register a helper; returns a [callee] for use in [CCall]/[Dirty].
    [cost] is the cycle cost charged per call by the host model (on top of
    the fixed call/save-restore overhead). *)
let register ?(fx_reads = []) ?(fx_writes = []) ~name ~cost (f : fn) : Ir.callee =
  let id = !count in
  incr count;
  if id >= Array.length !table then begin
    let nt = Array.make (max 16 (2 * id)) (fun _ _ -> 0L) in
    Array.blit !table 0 nt 0 (Array.length !table);
    table := nt;
    let nn = Array.make (Array.length nt) "" in
    Array.blit !names 0 nn 0 (Array.length !names);
    names := nn
  end;
  !table.(id) <- f;
  !names.(id) <- name;
  {
    Ir.c_name = name;
    c_id = id;
    c_cost = cost;
    c_fx_reads = fx_reads;
    c_fx_writes = fx_writes;
  }

(** Invoke helper [id]. Raises [Invalid_argument] for an unknown id. *)
let call (id : int) (env : env) (args : int64 array) : int64 =
  if id < 0 || id >= !count then invalid_arg "Helpers.call: unknown helper id";
  !table.(id) env args

let name id = if id >= 0 && id < !count then !names.(id) else "?"
