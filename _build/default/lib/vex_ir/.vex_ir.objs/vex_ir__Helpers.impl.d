lib/vex_ir/helpers.ml: Array Ir
