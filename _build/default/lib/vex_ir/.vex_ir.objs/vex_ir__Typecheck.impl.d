lib/vex_ir/typecheck.ml: Fmt Ir List Pp Support
