lib/vex_ir/pp.ml: Fmt Ir List Support
