lib/vex_ir/ir.ml: Support
