lib/vex_ir/eval.ml: Array Bits Float Fmt Helpers Int64 Ir List Support V128
