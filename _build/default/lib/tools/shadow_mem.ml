(** Two-level shadow memory for Memcheck, after Nethercote & Seward,
    "How to shadow every byte of memory used by a program" (VEE 2007,
    reference [19] of the paper).

    Every byte of the 32-bit guest address space has:
    - one A (addressability) bit: may the client touch it at all (this is
      the {e library-level} addressability of R8, finer than the kernel's
      page-level mapping — e.g. red zones and freed heap blocks are
      mapped but not addressable);
    - eight V (validity) bits: bit [i] set means bit [i] of the byte is
      {e undefined}.

    The space is covered by a 64K-entry primary map of 64KB secondaries.
    Three {e distinguished} secondaries (noaccess / defined / undefined)
    are shared by all chunks in those uniform states and copied-on-write,
    so shadowing 4GB costs almost nothing until memory is actually used
    in interesting ways.  (The paper notes "shadow memory operations
    account for close to half of Memcheck's overhead" — the helper costs
    in {!Memcheck} model that.) *)

type secondary = {
  mutable vbits : Bytes.t;  (** 64K bytes; 0x00 = defined, 0xFF = undefined *)
  mutable abits : Bytes.t;  (** 8K bitmap; bit set = addressable *)
}

type sm_state = Sm_noaccess | Sm_defined | Sm_undefined | Sm_real of secondary

type t = {
  primary : sm_state array;  (** 65536 entries *)
  mutable n_cow : int;  (** copy-on-write materialisations *)
}

let chunk_size = 65536

let create () = { primary = Array.make 65536 Sm_noaccess; n_cow = 0 }

let fresh_secondary ~(a : bool) ~(vbyte : int) : secondary =
  {
    vbits = Bytes.make chunk_size (Char.chr (vbyte land 0xFF));
    abits = Bytes.make (chunk_size / 8) (if a then '\xFF' else '\x00');
  }

let materialise (t : t) (idx : int) : secondary =
  match t.primary.(idx) with
  | Sm_real s -> s
  | st ->
      let s =
        match st with
        | Sm_noaccess -> fresh_secondary ~a:false ~vbyte:0xFF
        | Sm_defined -> fresh_secondary ~a:true ~vbyte:0x00
        | Sm_undefined -> fresh_secondary ~a:true ~vbyte:0xFF
        | Sm_real _ -> assert false
      in
      t.n_cow <- t.n_cow + 1;
      t.primary.(idx) <- Sm_real s;
      s

let chunk_of (addr : int64) = Int64.to_int (Int64.shift_right_logical (Support.Bits.trunc32 addr) 16)
let off_of (addr : int64) = Int64.to_int (Int64.logand addr 0xFFFFL)

(* ------------------------------------------------------------------ *)
(* Per-byte access                                                      *)
(* ------------------------------------------------------------------ *)

let get_abit (t : t) (addr : int64) : bool =
  match t.primary.(chunk_of addr) with
  | Sm_noaccess -> false
  | Sm_defined | Sm_undefined -> true
  | Sm_real s ->
      let o = off_of addr in
      Char.code (Bytes.unsafe_get s.abits (o lsr 3)) land (1 lsl (o land 7)) <> 0

let get_vbyte (t : t) (addr : int64) : int =
  match t.primary.(chunk_of addr) with
  | Sm_noaccess -> 0xFF
  | Sm_defined -> 0x00
  | Sm_undefined -> 0xFF
  | Sm_real s -> Char.code (Bytes.unsafe_get s.vbits (off_of addr))

let set_byte (t : t) (addr : int64) ~(a : bool) ~(vbyte : int) =
  let idx = chunk_of addr in
  (* fast path: byte already in a matching distinguished state *)
  match (t.primary.(idx), a, vbyte) with
  | Sm_noaccess, false, _ -> ()
  | Sm_defined, true, 0x00 -> ()
  | Sm_undefined, true, 0xFF -> ()
  | _ ->
      let s = materialise t idx in
      let o = off_of addr in
      Bytes.unsafe_set s.vbits o (Char.unsafe_chr (vbyte land 0xFF));
      let b = Char.code (Bytes.unsafe_get s.abits (o lsr 3)) in
      let bit = 1 lsl (o land 7) in
      Bytes.unsafe_set s.abits (o lsr 3)
        (Char.unsafe_chr (if a then b lor bit else b land lnot bit))

let set_vbyte (t : t) (addr : int64) (vbyte : int) =
  set_byte t addr ~a:(get_abit t addr) ~vbyte

(* ------------------------------------------------------------------ *)
(* Range operations (the make_mem_* callbacks)                          *)
(* ------------------------------------------------------------------ *)

let set_range (t : t) (addr : int64) (len : int) ~(a : bool) ~(vbyte : int) =
  if len > 0 then begin
    let addr = Support.Bits.trunc32 addr in
    let first_chunk = chunk_of addr in
    let last_chunk = chunk_of (Int64.add addr (Int64.of_int (len - 1))) in
    if first_chunk = last_chunk || last_chunk - first_chunk < 2 then
      for i = 0 to len - 1 do
        set_byte t (Int64.add addr (Int64.of_int i)) ~a ~vbyte
      done
    else begin
      (* whole middle chunks flip to a distinguished state cheaply *)
      let state =
        if not a then Sm_noaccess
        else if vbyte = 0 then Sm_defined
        else Sm_undefined
      in
      for c = first_chunk + 1 to last_chunk - 1 do
        t.primary.(c) <- state
      done;
      let first_end = Int64.of_int ((first_chunk + 1) * chunk_size) in
      let i = ref addr in
      while Int64.unsigned_compare !i first_end < 0 do
        set_byte t !i ~a ~vbyte;
        i := Int64.add !i 1L
      done;
      let last_start = Int64.of_int (last_chunk * chunk_size) in
      let fin = Int64.add addr (Int64.of_int len) in
      let i = ref last_start in
      while Int64.unsigned_compare !i fin < 0 do
        set_byte t !i ~a ~vbyte;
        i := Int64.add !i 1L
      done
    end
  end

let make_noaccess t addr len = set_range t addr len ~a:false ~vbyte:0xFF
let make_undefined t addr len = set_range t addr len ~a:true ~vbyte:0xFF
let make_defined t addr len = set_range t addr len ~a:true ~vbyte:0x00

(** Copy addressability and validity (for mremap / realloc). *)
let copy_range (t : t) ~(src : int64) ~(dst : int64) (len : int) =
  (* copy via a temp so overlapping ranges behave like memmove *)
  let tmp =
    Array.init len (fun i ->
        let a = Int64.add src (Int64.of_int i) in
        (get_abit t a, get_vbyte t a))
  in
  Array.iteri
    (fun i (a, v) -> set_byte t (Int64.add dst (Int64.of_int i)) ~a ~vbyte:v)
    tmp

(* ------------------------------------------------------------------ *)
(* Word-wise access (the LOADV/STOREV helper backends)                  *)
(* ------------------------------------------------------------------ *)

(** [load t addr size] returns [(all_addressable, vbits)] where [vbits]
    packs the V bits of the [size] bytes little-endian (bit set =
    undefined). *)
let load (t : t) (addr : int64) (size : int) : bool * int64 =
  let ok = ref true in
  let v = ref 0L in
  for i = size - 1 downto 0 do
    let a = Int64.add addr (Int64.of_int i) in
    if not (get_abit t a) then ok := false;
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_vbyte t a))
  done;
  (!ok, !v)

(** [store t addr size vbits] writes V bits; returns false if any byte
    was unaddressable (the A bits are left unchanged — an invalid write
    does not make the target addressable). *)
let store (t : t) (addr : int64) (size : int) (vbits : int64) : bool =
  let ok = ref true in
  for i = 0 to size - 1 do
    let a = Int64.add addr (Int64.of_int i) in
    if get_abit t a then
      set_vbyte t a
        (Int64.to_int (Int64.logand (Int64.shift_right_logical vbits (8 * i)) 0xFFL))
    else ok := false
  done;
  !ok

(** First unaddressable byte in [addr, addr+len), if any. *)
let find_unaddressable (t : t) (addr : int64) (len : int) : int64 option =
  let rec go i =
    if i >= len then None
    else
      let a = Int64.add addr (Int64.of_int i) in
      if not (get_abit t a) then Some a else go (i + 1)
  in
  go 0

(** First byte with any undefined bit in [addr, addr+len), if any. *)
let find_undefined (t : t) (addr : int64) (len : int) : int64 option =
  let rec go i =
    if i >= len then None
    else
      let a = Int64.add addr (Int64.of_int i) in
      if get_vbyte t a <> 0 then Some a else go (i + 1)
  in
  go 0

(** Statistics for the shadow-memory bench: (real secondaries, CoW count). *)
let stats (t : t) : int * int =
  let real =
    Array.fold_left
      (fun n s -> match s with Sm_real _ -> n + 1 | _ -> n)
      0 t.primary
  in
  (real, t.n_cow)
