lib/tools/massif.ml: Aspace Guest Hashtbl Int64 List Printf Vg_core
