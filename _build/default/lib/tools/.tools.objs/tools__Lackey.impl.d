lib/tools/lackey.ml: Array Int64 List Printf Support Vex_ir Vg_core
