lib/tools/memcheck.ml: Array Aspace Guest Hashtbl Int64 List Option Printf Queue Shadow_mem String Support Vex_ir Vg_core
