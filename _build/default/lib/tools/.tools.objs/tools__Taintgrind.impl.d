lib/tools/taintgrind.ml: Array Guest Hashtbl Int64 List Printf Shadow_mem Support Vex_ir Vg_core
