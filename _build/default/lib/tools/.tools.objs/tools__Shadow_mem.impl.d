lib/tools/shadow_mem.ml: Array Bytes Char Int64 Support
