lib/tools/annelid.ml: Array Aspace Guest Hashtbl Int64 Option Printf Support Vex_ir Vg_core
