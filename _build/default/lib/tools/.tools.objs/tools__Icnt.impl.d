lib/tools/icnt.ml: Aspace Int64 Printf Support Vex_ir Vg_core
