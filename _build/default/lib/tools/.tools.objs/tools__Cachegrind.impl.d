lib/tools/cachegrind.ml: Array Cachesim Hashtbl Int64 List Support Vex_ir Vg_core
