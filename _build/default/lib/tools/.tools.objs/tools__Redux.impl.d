lib/tools/redux.ml: Array Buffer Guest Hashtbl Int64 List Printf Queue Support Vex_ir Vg_core
