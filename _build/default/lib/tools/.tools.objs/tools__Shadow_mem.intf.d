lib/tools/shadow_mem.mli: Bytes
