(** Two-level shadow memory for Memcheck, after Nethercote & Seward,
    "How to shadow every byte of memory used by a program" (VEE 2007).

    Every guest byte has one A (addressability) bit and eight V
    (validity) bits (bit set = undefined).  A 64K-entry primary map of
    64KB secondaries covers the 32-bit space; uniform chunks share
    distinguished secondaries and are copied on write. *)

type secondary = { mutable vbits : Bytes.t; mutable abits : Bytes.t }

type sm_state = Sm_noaccess | Sm_defined | Sm_undefined | Sm_real of secondary

type t = {
  primary : sm_state array;  (** 65536 entries of 64KB each *)
  mutable n_cow : int;  (** copy-on-write materialisations so far *)
}

val create : unit -> t

(** {2 Per-byte access} *)

val get_abit : t -> int64 -> bool
(** may the client touch this byte at all? *)

val get_vbyte : t -> int64 -> int
(** the eight V bits of a byte; 0x00 fully defined, 0xFF fully undefined *)

val set_byte : t -> int64 -> a:bool -> vbyte:int -> unit
val set_vbyte : t -> int64 -> int -> unit

(** {2 Range operations (the make_mem_* event callbacks)} *)

val set_range : t -> int64 -> int -> a:bool -> vbyte:int -> unit
val make_noaccess : t -> int64 -> int -> unit
val make_undefined : t -> int64 -> int -> unit
val make_defined : t -> int64 -> int -> unit

val copy_range : t -> src:int64 -> dst:int64 -> int -> unit
(** copy A and V bits, memmove-style (for mremap/realloc) *)

(** {2 Word access (the LOADV/STOREV helper backends)} *)

val load : t -> int64 -> int -> bool * int64
(** [load t addr size] = (all bytes addressable?, packed V bits LE) *)

val store : t -> int64 -> int -> int64 -> bool
(** write V bits; [false] if any byte was unaddressable (A bits are left
    unchanged — an invalid write does not make its target accessible) *)

val find_unaddressable : t -> int64 -> int -> int64 option
val find_undefined : t -> int64 -> int -> int64 option

val stats : t -> int * int
(** (materialised secondaries, copy-on-write count) *)
