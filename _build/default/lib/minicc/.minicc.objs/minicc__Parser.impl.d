lib/minicc/parser.ml: Ast Char Fmt Int64 Lexer List
