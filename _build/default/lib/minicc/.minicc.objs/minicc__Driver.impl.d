lib/minicc/driver.ml: Codegen Guest Lexer Libc Parser Printf
