lib/minicc/lexer.ml: Buffer Fmt Int64 List String
