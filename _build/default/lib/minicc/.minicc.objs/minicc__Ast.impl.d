lib/minicc/ast.ml: Fmt
