lib/minicc/libc.ml:
