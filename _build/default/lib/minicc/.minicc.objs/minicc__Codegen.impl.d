lib/minicc/codegen.ml: Ast Buffer Char Fmt Hashtbl Int64 List Option Parser Printf String Support
