(** Compiler driver: mini-C source -> loadable VG32 image. *)

exception Compile_error of string

(** Compile [src] (one translation unit; the libc is appended unless
    [with_libc] is false) into an image ready for {!Native} or
    {!Vg_core.Session}. *)
let compile ?(with_libc = true) (src : string) : Guest.Image.t =
  let full = if with_libc then src ^ "\n" ^ Libc.source else src in
  let asm_text =
    try Codegen.compile_to_asm full with
    | Codegen.Error m -> raise (Compile_error m)
    | Parser.Error { line; msg } ->
        raise (Compile_error (Printf.sprintf "parse error at line %d: %s" line msg))
    | Lexer.Error { line; msg } ->
        raise (Compile_error (Printf.sprintf "lex error at line %d: %s" line msg))
  in
  let full_asm = Libc.startup_asm ^ "\n" ^ asm_text in
  try Guest.Asm.assemble full_asm
  with Guest.Asm.Error { line; msg } ->
    raise
      (Compile_error
         (Printf.sprintf "internal: generated assembly rejected at line %d: %s"
            line msg))

(** Compile to assembly text only (startup + program + libc), without
    assembling — for inspection, or for linking extra hand-written
    assembly before a final {!Guest.Asm.assemble}. *)
let to_asm ?(with_libc = true) (src : string) : string =
  let full = if with_libc then src ^ "\n" ^ Libc.source else src in
  let asm_text = Codegen.compile_to_asm full in
  Libc.startup_asm ^ "\n" ^ asm_text

(** Compile and also return the generated assembly (for inspection). *)
let compile_with_asm ?(with_libc = true) (src : string) :
    Guest.Image.t * string =
  let full_asm = to_asm ~with_libc src in
  (Guest.Asm.assemble full_asm, full_asm)
