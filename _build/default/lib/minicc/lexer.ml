(** Hand-written lexer for mini-C. *)

type token =
  | INT of int64
  | FLOAT of float
  | STR of string
  | CHR of char
  | IDENT of string
  | KW of string  (** int/char/double/void/if/else/while/for/return/... *)
  | PUNCT of string  (** operators and punctuation *)
  | EOF

exception Error of { line : int; msg : string }

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (token * int) option;
}

let keywords =
  [ "int"; "char"; "double"; "void"; "if"; "else"; "while"; "for"; "return";
    "break"; "continue"; "sizeof" ]

let create src = { src; pos = 0; line = 1; peeked = None }

let error lx fmt = Fmt.kstr (fun msg -> raise (Error { line = lx.line; msg })) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  if lx.pos < String.length lx.src then begin
    if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
    lx.pos <- lx.pos + 1
  end

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
      match lx.src.[lx.pos + 1] with
      | '/' ->
          while peek_char lx <> None && peek_char lx <> Some '\n' do
            advance lx
          done;
          skip_ws lx
      | '*' ->
          advance lx;
          advance lx;
          let rec go () =
            match peek_char lx with
            | None -> error lx "unterminated comment"
            | Some '*' when lx.pos + 1 < String.length lx.src
                            && lx.src.[lx.pos + 1] = '/' ->
                advance lx;
                advance lx
            | Some _ ->
                advance lx;
                go ()
          in
          go ();
          skip_ws lx
      | _ -> ())
  | _ -> ()

let read_escape lx =
  advance lx;
  match peek_char lx with
  | Some 'n' -> advance lx; '\n'
  | Some 't' -> advance lx; '\t'
  | Some 'r' -> advance lx; '\r'
  | Some '0' -> advance lx; '\000'
  | Some '\\' -> advance lx; '\\'
  | Some '\'' -> advance lx; '\''
  | Some '"' -> advance lx; '"'
  | Some c -> error lx "unknown escape '\\%c'" c
  | None -> error lx "unterminated escape"

let rec raw_next lx : token =
  skip_ws lx;
  match peek_char lx with
  | None -> EOF
  | Some c when is_digit c ->
      let start = lx.pos in
      while (match peek_char lx with
             | Some c -> is_digit c || c = 'x' || c = 'X' || c = '.'
                         || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
             | None -> false)
      do
        advance lx
      done;
      let s = String.sub lx.src start (lx.pos - start) in
      if String.contains s '.' && not (String.length s > 1 && (s.[1] = 'x' || s.[1] = 'X')) then
        match float_of_string_opt s with
        | Some f -> FLOAT f
        | None -> error lx "bad float literal '%s'" s
      else (
        match Int64.of_string_opt s with
        | Some n -> INT n
        | None -> error lx "bad integer literal '%s'" s)
  | Some c when is_ident_start c ->
      let start = lx.pos in
      while (match peek_char lx with Some c -> is_ident c | None -> false) do
        advance lx
      done;
      let s = String.sub lx.src start (lx.pos - start) in
      if List.mem s keywords then KW s else IDENT s
  | Some '"' ->
      advance lx;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek_char lx with
        | None -> error lx "unterminated string"
        | Some '"' -> advance lx
        | Some '\\' -> Buffer.add_char buf (read_escape lx); go ()
        | Some c ->
            advance lx;
            Buffer.add_char buf c;
            go ()
      in
      go ();
      STR (Buffer.contents buf)
  | Some '\'' ->
      advance lx;
      let c =
        match peek_char lx with
        | Some '\\' -> read_escape lx
        | Some c ->
            advance lx;
            c
        | None -> error lx "unterminated char literal"
      in
      (match peek_char lx with
      | Some '\'' -> advance lx
      | _ -> error lx "unterminated char literal");
      CHR c
  | Some c ->
      let two =
        if lx.pos + 1 < String.length lx.src then
          Some (String.sub lx.src lx.pos 2)
        else None
      in
      (match two with
      | Some (("=="|"!="|"<="|">="|"&&"|"||"|"+="|"-="|"*="|"/="|"%="|"<<"|">>"|"++"|"--") as op) ->
          advance lx;
          advance lx;
          PUNCT op
      | _ ->
          (match c with
          | '+' | '-' | '*' | '/' | '%' | '=' | '<' | '>' | '!' | '&' | '|'
          | '^' | '~' | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '?'
          | ':' ->
              advance lx;
              PUNCT (String.make 1 c)
          | c -> error lx "unexpected character '%c'" c))

and next lx : token =
  match lx.peeked with
  | Some (t, line) ->
      lx.peeked <- None;
      ignore line;
      t
  | None -> raw_next lx

let peek lx : token =
  match lx.peeked with
  | Some (t, _) -> t
  | None ->
      let t = raw_next lx in
      lx.peeked <- Some (t, lx.line);
      t

let pp_token ppf = function
  | INT n -> Fmt.pf ppf "%Ld" n
  | FLOAT f -> Fmt.pf ppf "%g" f
  | STR s -> Fmt.pf ppf "%S" s
  | CHR c -> Fmt.pf ppf "'%c'" c
  | IDENT s | KW s | PUNCT s -> Fmt.string ppf s
  | EOF -> Fmt.string ppf "<eof>"
