(** Code generation: mini-C AST -> VG32 assembly text.

    A classic one-pass stack-machine generator: expression results live
    in r0 (integers/pointers) or f0 (doubles); intermediate values are
    pushed on the guest stack; locals are addressed off the frame pointer
    (r6), arguments at [fp+8+..] (pushed right-to-left), giving the frame
    layout the core's stack tracer expects ([fp] = saved fp, [fp+4] =
    return address). *)

open Ast

exception Error of string

let err fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

type binding = Local of ty * int  (** fp-relative offset *) | Global of ty

type fsig = { fs_ret : ty; fs_params : ty list }

type env = {
  buf : Buffer.t;  (** text section *)
  data : Buffer.t;  (** data section *)
  mutable label_n : int;
  mutable str_n : int;
  funcs : (string, fsig) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  mutable locals : (string * binding) list;  (** innermost first *)
  mutable frame_size : int;
  mutable breaks : string list;  (** label stacks for break/continue *)
  mutable continues : string list;
  mutable cur_ret : ty;
  mutable cur_exit : string;
}

let ins env fmt = Fmt.kstr (fun s -> Buffer.add_string env.buf ("        " ^ s ^ "\n")) fmt
let label env l = Buffer.add_string env.buf (l ^ ":\n")
let dat env fmt = Fmt.kstr (fun s -> Buffer.add_string env.data (s ^ "\n")) fmt

let fresh_label env prefix =
  let n = env.label_n in
  env.label_n <- n + 1;
  Printf.sprintf ".L%s%d" prefix n

(* value category of a type when held in a register *)
let is_double = function Tdouble -> true | _ -> false

let decay = function Tarray (t, _) -> Tptr t | t -> t

let elem_ty = function
  | Tptr t -> t
  | Tarray (t, _) -> t
  | t -> err "cannot index/deref a value of type %a" pp_ty t

(* ------------------------------------------------------------------ *)
(* Builtins                                                             *)
(* ------------------------------------------------------------------ *)

let builtin_sigs : (string * fsig) list =
  [
    ("__syscall0", { fs_ret = Tint; fs_params = [ Tint ] });
    ("__syscall1", { fs_ret = Tint; fs_params = [ Tint; Tint ] });
    ("__syscall2", { fs_ret = Tint; fs_params = [ Tint; Tint; Tint ] });
    ("__syscall3", { fs_ret = Tint; fs_params = [ Tint; Tint; Tint; Tint ] });
    ("__clreq", { fs_ret = Tint; fs_params = [ Tint; Tptr Tint ] });
    ("__sysinfo", { fs_ret = Tint; fs_params = [ Tint ] });
    ("sqrt", { fs_ret = Tdouble; fs_params = [ Tdouble ] });
    ("fabs", { fs_ret = Tdouble; fs_params = [ Tdouble ] });
  ]

(* ------------------------------------------------------------------ *)
(* Frame layout                                                         *)
(* ------------------------------------------------------------------ *)

let align n a = (n + a - 1) land lnot (a - 1)

(* Pre-assign every local declared anywhere in the function a slot. *)
let assign_locals (f : func) : (string * binding) list * int =
  let offset = ref 0 in
  let slots = ref [] in
  let add_local t name =
    if List.mem_assoc name !slots then
      err "duplicate local '%s' in function '%s' (mini-C requires unique \
           names per function)"
        name f.f_name;
    let size = align (ty_size t) 4 in
    offset := align (!offset + size) (if is_double (decay t) then 8 else 4);
    slots := (name, Local (t, - !offset)) :: !slots
  in
  let rec walk_stmt = function
    | Decl (t, name, _) -> add_local t name
    | If (_, a, b) ->
        List.iter walk_stmt a;
        List.iter walk_stmt b
    | While (_, b) -> List.iter walk_stmt b
    | For (init, _, _, b) ->
        Option.iter walk_stmt init;
        List.iter walk_stmt b
    | Block b -> List.iter walk_stmt b
    | _ -> ()
  in
  List.iter walk_stmt f.f_body;
  (* parameters *)
  let poff = ref 8 in
  List.iter
    (fun (t, name) ->
      let t = decay t in
      slots := (name, Local (t, !poff)) :: !slots;
      poff := !poff + align (ty_size t) 4)
    f.f_params;
  (List.rev !slots, align !offset 8)

let lookup env name : binding =
  match List.assoc_opt name env.locals with
  | Some b -> b
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some t -> Global t
      | None -> err "undefined variable '%s'" name)

(* ------------------------------------------------------------------ *)
(* Expression codegen                                                   *)
(* ------------------------------------------------------------------ *)

(* convert the value in r0/f0 from [src] to [dst] *)
let convert env (src : ty) (dst : ty) =
  match (decay src, decay dst) with
  | Tdouble, Tdouble -> ()
  | Tdouble, (Tint | Tchar) -> ins env "fdtoi r0, f0"
  | (Tint | Tchar | Tptr _), Tdouble -> ins env "fitod f0, r0"
  | _ -> ()

let push_value env (t : ty) =
  if is_double (decay t) then begin
    ins env "subi sp, 8";
    ins env "fst [sp], f0"
  end
  else ins env "push r0"

(* pop the earlier (lhs) value into r1/f1 *)
let pop_lhs env (t : ty) =
  if is_double (decay t) then begin
    ins env "fld f1, [sp]";
    ins env "addi sp, 8"
  end
  else ins env "pop r1"

let load_of_ty env (t : ty) ~addr_reg =
  match decay t with
  | Tchar -> ins env "ldb r0, [%s]" addr_reg
  | Tdouble -> ins env "fld f0, [%s]" addr_reg
  | Tarray _ -> () (* arrays decay: the address is the value *)
  | _ -> ins env "ldw r0, [%s]" addr_reg

let store_of_ty env (t : ty) ~addr_reg =
  match decay t with
  | Tchar -> ins env "stb [%s], r0" addr_reg
  | Tdouble -> ins env "fst [%s], f0" addr_reg
  | _ -> ins env "stw [%s], r0" addr_reg

let cond_suffix ~flt = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> if flt then "b" else "lt"
  | Le -> if flt then "be" else "le"
  | Gt -> if flt then "a" else "gt"
  | Ge -> if flt then "ae" else "ge"
  | _ -> assert false

let rec gen_expr env (e : expr) : ty =
  match e with
  | Int n ->
      ins env "movi r0, %Ld" (Support.Bits.trunc32 n);
      Tint
  | Chr c ->
      ins env "movi r0, %d" (Char.code c);
      Tint
  | Float f ->
      ins env "fldi f0, %h" f;
      Tdouble
  | Str s ->
      let l = Printf.sprintf ".str%d" env.str_n in
      env.str_n <- env.str_n + 1;
      let escaped =
        String.concat ""
          (List.map
             (fun c ->
               match c with
               | '\n' -> "\\n"
               | '\t' -> "\\t"
               | '"' -> "\\\""
               | '\\' -> "\\\\"
               | '\000' -> "\\0"
               | c -> String.make 1 c)
             (List.init (String.length s) (String.get s)))
      in
      dat env "%s: .asciz \"%s\"" l escaped;
      ins env "movi r0, %s" l;
      Tptr Tchar
  | Var name -> (
      match lookup env name with
      | Local (t, off) -> (
          match t with
          | Tarray _ ->
              ins env "lea r0, [fp%+d]" off;
              decay t
          | _ ->
              ins env
                (match decay t with
                | Tchar -> "ldb r0, [fp%+d]"
                | Tdouble -> "fld f0, [fp%+d]"
                | _ -> "ldw r0, [fp%+d]")
                off;
              t)
      | Global t -> (
          match t with
          | Tarray _ ->
              ins env "movi r0, %s" name;
              decay t
          | _ ->
              ins env "movi r0, %s" name;
              load_of_ty env t ~addr_reg:"r0";
              t))
  | Sizeof t ->
      ins env "movi r0, %d" (ty_size t);
      Tint
  | Cast (t, e) ->
      let src = gen_expr env e in
      convert env src t;
      decay t
  | Addr lv ->
      let t = gen_addr env lv in
      Tptr t
  | Deref e ->
      let t = gen_expr env e in
      let et = elem_ty t in
      (match et with
      | Tarray _ -> () (* address is the value *)
      | _ -> load_of_ty env et ~addr_reg:"r0");
      decay et
  | Index (a, i) ->
      let et = gen_index_addr env a i in
      (match et with
      | Tarray _ -> ()
      | _ -> load_of_ty env et ~addr_reg:"r0");
      decay et
  | Assign (lv, rhs) ->
      let lt = gen_addr env lv in
      ins env "push r0";
      let rt = gen_expr env rhs in
      convert env rt lt;
      ins env "pop r1";
      store_of_ty env lt ~addr_reg:"r1";
      decay lt
  | OpAssign (op, lv, rhs) ->
      gen_expr env (Assign (lv, Bin (op, lv, rhs)))
  | PostIncr lv -> gen_incdec env lv 1
  | PostDecr lv -> gen_incdec env lv (-1)
  | Un (Neg, e) -> (
      match gen_expr env e with
      | Tdouble ->
          ins env "fneg f0, f0";
          Tdouble
      | t ->
          ins env "neg r0";
          t)
  | Un (Not, e) ->
      let t = gen_expr env e in
      if is_double t then begin
        ins env "fldi f1, 0";
        ins env "fcmp f0, f1";
        ins env "seteq r0"
      end
      else begin
        ins env "cmpi r0, 0";
        ins env "seteq r0"
      end;
      Tint
  | Un (Bnot, e) ->
      ignore (gen_expr env e);
      ins env "not r0";
      Tint
  | Cond (c, t, f) ->
      let lf = fresh_label env "cf" in
      let le = fresh_label env "ce" in
      gen_cond_jump env c ~jump_if_false:lf;
      let tt = gen_expr env t in
      ins env "jmp %s" le;
      label env lf;
      let ft = gen_expr env f in
      label env le;
      if is_double tt || is_double ft then Tdouble
        (* NB: arms of mixed int/double ternaries are not auto-promoted;
           avoided in practice *)
      else tt
  | Bin (And, a, b) ->
      let lf = fresh_label env "af" in
      let le = fresh_label env "ae" in
      gen_cond_jump env a ~jump_if_false:lf;
      gen_cond_jump env b ~jump_if_false:lf;
      ins env "movi r0, 1";
      ins env "jmp %s" le;
      label env lf;
      ins env "movi r0, 0";
      label env le;
      Tint
  | Bin (Or, a, b) ->
      let l2 = fresh_label env "o2" in
      let lf = fresh_label env "of" in
      let le = fresh_label env "oe" in
      gen_cond_jump env a ~jump_if_false:l2;
      ins env "movi r0, 1";
      ins env "jmp %s" le;
      label env l2;
      gen_cond_jump env b ~jump_if_false:lf;
      ins env "movi r0, 1";
      ins env "jmp %s" le;
      label env lf;
      ins env "movi r0, 0";
      label env le;
      Tint
  | Bin (op, a, b) -> gen_binop env op a b
  | Call (name, args) -> gen_call env name args

and gen_incdec env lv dir : ty =
  let t = gen_addr env lv in
  let t = decay t in
  let step =
    match t with Tptr e -> ty_size e | _ -> 1
  in
  (match t with
  | Tdouble ->
      ins env "mov r2, r0";
      ins env "fld f0, [r2]";
      ins env "fldi f1, 1";
      ins env (if dir > 0 then "fadd f1, f0" else "fmov f2, f0");
      if dir > 0 then begin
        (* f1 = old+1; store f1, keep old in f0 *)
        ins env "fst [r2], f1"
      end
      else begin
        ins env "fldi f1, 1";
        ins env "fsub f2, f1";
        ins env "fst [r2], f2"
      end
  | _ ->
      ins env "mov r2, r0";
      ins env "ldw r0, [r2]";
      (match t with Tchar -> ins env "ldb r0, [r2]" | _ -> ());
      ins env "mov r1, r0";
      ins env "%s r1, %d" (if dir > 0 then "addi" else "subi") step;
      (match t with
      | Tchar -> ins env "stb [r2], r1"
      | _ -> ins env "stw [r2], r1"));
  t

(* address of an indexed element in r0; returns the element type *)
and gen_index_addr env (a : expr) (i : expr) : ty =
  let at = gen_expr env a in
  let et = elem_ty at in
  ins env "push r0";
  let it = gen_expr env i in
  if is_double it then err "array index cannot be a double";
  let sz = ty_size (decay et) in
  if sz > 1 then begin
    if sz = 4 then ins env "shli r0, 2"
    else if sz = 8 then ins env "shli r0, 3"
    else if sz = 2 then ins env "shli r0, 1"
    else begin
      ins env "movi r1, %d" sz;
      ins env "mul r0, r1"
    end
  end;
  ins env "pop r1";
  ins env "add r0, r1";
  et

(* address of an lvalue in r0; returns the *element* type *)
and gen_addr env (lv : expr) : ty =
  match lv with
  | Var name when
      (not (List.mem_assoc name env.locals))
      && (not (Hashtbl.mem env.globals name))
      && Hashtbl.mem env.funcs name ->
      (* &function: the code address (usable with an asm-level indirect
         call; mini-C itself has no function-pointer calls) *)
      ins env "movi r0, %s" name;
      Tint
  | Var name -> (
      match lookup env name with
      | Local (t, off) ->
          ins env "lea r0, [fp%+d]" off;
          t
      | Global t ->
          ins env "movi r0, %s" name;
          t)
  | Deref e ->
      let t = gen_expr env e in
      elem_ty t
  | Index (a, i) -> gen_index_addr env a i
  | e -> err "expression is not an lvalue: %s" (match e with Call _ -> "call" | _ -> "expr")

and gen_binop env op a b : ty =
  let ta0 = gen_expr env a in
  let ta = decay ta0 in
  (* decide promotion by scanning b's type cheaply: we must generate b
     anyway, so generate, then reconcile *)
  push_value env ta;
  let tb0 = gen_expr env b in
  let tb = decay tb0 in
  let flt = is_double ta || is_double tb in
  if flt then begin
    (* normalise: rhs to f1, lhs to f0 *)
    if is_double ta then begin
      (* lhs was pushed as double *)
      if is_double tb then ins env "fmov f1, f0"
      else begin
        ins env "fitod f1, r0"
      end;
      ins env "fld f0, [sp]";
      ins env "addi sp, 8"
    end
    else begin
      (* lhs pushed as int word *)
      ins env "fmov f1, f0";
      ins env "pop r1";
      ins env "fitod f0, r1"
    end;
    match op with
    | Add ->
        ins env "fadd f0, f1";
        Tdouble
    | Sub ->
        ins env "fsub f0, f1";
        Tdouble
    | Mul ->
        ins env "fmul f0, f1";
        Tdouble
    | Div ->
        ins env "fdiv f0, f1";
        Tdouble
    | Eq | Ne | Lt | Le | Gt | Ge ->
        ins env "fcmp f0, f1";
        ins env "set%s r0" (cond_suffix ~flt:true op);
        Tint
    | _ -> err "invalid double operation"
  end
  else begin
    (* integers/pointers: lhs in r1 (popped), rhs in r0 *)
    ins env "pop r1";
    let scale_for_ptr ptr_ty other_reg =
      match ptr_ty with
      | Tptr e when ty_size (decay e) > 1 ->
          let sz = ty_size (decay e) in
          if sz = 4 then ins env "shli %s, 2" other_reg
          else if sz = 8 then ins env "shli %s, 3" other_reg
          else begin
            ins env "movi r2, %d" sz;
            ins env "mul %s, r2" other_reg
          end
      | _ -> ()
    in
    match op with
    | Add ->
        (* pointer arithmetic scaling *)
        (match (ta, tb) with
        | Tptr _, _ -> scale_for_ptr ta "r0"
        | _, Tptr _ -> scale_for_ptr tb "r1"
        | _ -> ());
        ins env "add r1, r0";
        ins env "mov r0, r1";
        if is_ptr ta then ta else if is_ptr tb then tb else Tint
    | Sub ->
        (match (ta, tb) with
        | Tptr _, Tptr _ ->
            ins env "sub r1, r0";
            ins env "mov r0, r1";
            let sz = ty_size (decay (elem_ty ta)) in
            if sz > 1 then begin
              ins env "movi r1, %d" sz;
              ins env "divs r0, r1"
            end
        | Tptr _, _ ->
            scale_for_ptr ta "r0";
            ins env "sub r1, r0";
            ins env "mov r0, r1"
        | _ ->
            ins env "sub r1, r0";
            ins env "mov r0, r1");
        if is_ptr ta && not (is_ptr tb) then ta else Tint
    | Mul ->
        ins env "mul r1, r0";
        ins env "mov r0, r1";
        Tint
    | Div ->
        ins env "divs r1, r0";
        ins env "mov r0, r1";
        Tint
    | Mod ->
        (* r1 % r0 = r1 - (r1/r0)*r0 *)
        ins env "mov r2, r1";
        ins env "divs r2, r0";
        ins env "mul r2, r0";
        ins env "sub r1, r2";
        ins env "mov r0, r1";
        Tint
    | Band ->
        ins env "and r1, r0";
        ins env "mov r0, r1";
        Tint
    | Bor ->
        ins env "or r1, r0";
        ins env "mov r0, r1";
        Tint
    | Bxor ->
        ins env "xor r1, r0";
        ins env "mov r0, r1";
        Tint
    | Shl ->
        ins env "shl r1, r0";
        ins env "mov r0, r1";
        Tint
    | Shr ->
        ins env "sar r1, r0";
        ins env "mov r0, r1";
        Tint
    | Eq | Ne | Lt | Le | Gt | Ge ->
        ins env "cmp r1, r0";
        ins env "set%s r0" (cond_suffix ~flt:false op);
        Tint
    | And | Or -> assert false
  end

and is_ptr = function Tptr _ -> true | _ -> false
and elem_ty_opt t = match t with Tptr e -> e | _ -> Tvoid

(* generate a conditional jump to [jump_if_false] when [c] is false *)
and gen_cond_jump env (c : expr) ~(jump_if_false : string) =
  match c with
  | Bin (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) ->
      let ta = gen_expr env a in
      push_value env (decay ta);
      let tb = gen_expr env b in
      let flt = is_double (decay ta) || is_double (decay tb) in
      if flt then begin
        if is_double (decay ta) then begin
          if is_double (decay tb) then ins env "fmov f1, f0"
          else ins env "fitod f1, r0";
          ins env "fld f0, [sp]";
          ins env "addi sp, 8"
        end
        else begin
          ins env "fmov f1, f0";
          ins env "pop r1";
          ins env "fitod f0, r1"
        end;
        ins env "fcmp f0, f1"
      end
      else begin
        ins env "pop r1";
        ins env "cmp r1, r0"
      end;
      let inverse = function
        | Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt
        | _ -> assert false
      in
      ins env "j%s %s" (cond_suffix ~flt (inverse op)) jump_if_false
  | Bin (And, a, b) ->
      gen_cond_jump env a ~jump_if_false;
      gen_cond_jump env b ~jump_if_false
  | Bin (Or, a, b) ->
      let lt = fresh_label env "or" in
      let la = fresh_label env "oa" in
      gen_cond_jump env a ~jump_if_false:la;
      ins env "jmp %s" lt;
      label env la;
      gen_cond_jump env b ~jump_if_false;
      label env lt
  | Un (Not, e) ->
      (* !e false <=> e true: jump to false-label when e is true *)
      let lt = fresh_label env "nt" in
      gen_cond_jump env e ~jump_if_false:lt;
      ins env "jmp %s" jump_if_false;
      label env lt
  | e ->
      let t = gen_expr env e in
      if is_double (decay t) then begin
        ins env "fldi f1, 0";
        ins env "fcmp f0, f1";
        ins env "jeq %s" jump_if_false
      end
      else begin
        ins env "cmpi r0, 0";
        ins env "jeq %s" jump_if_false
      end

and gen_call env name args : ty =
  let fsig =
    match Hashtbl.find_opt env.funcs name with
    | Some s -> Some s
    | None -> List.assoc_opt name builtin_sigs
  in
  match name with
  | "sqrt" | "fabs" ->
      (match args with
      | [ a ] ->
          let t = gen_expr env a in
          convert env t Tdouble;
          ins env (if name = "sqrt" then "fsqrt f0, f0" else "fabs f0, f0")
      | _ -> err "%s expects one argument" name);
      Tdouble
  | "__sysinfo" ->
      (match args with
      | [ a ] ->
          ignore (gen_expr env a);
          ins env "sysinfo"
      | _ -> err "__sysinfo expects one argument");
      Tint
  | "__syscall0" | "__syscall1" | "__syscall2" | "__syscall3" ->
      let n = Char.code name.[9] - Char.code '0' in
      if List.length args <> n + 1 then
        err "%s expects %d arguments" name (n + 1);
      (* evaluate args left-to-right, pushing *)
      List.iter
        (fun a ->
          let t = gen_expr env a in
          if is_double (decay t) then err "syscall arguments must be integers";
          ins env "push r0")
        args;
      (* pop into r_n..r0 *)
      for i = n downto 0 do
        ins env "pop r%d" i
      done;
      ins env "syscall";
      Tint
  | "__clreq" ->
      (match args with
      | [ code; argp ] ->
          ignore (gen_expr env code);
          ins env "push r0";
          ignore (gen_expr env argp);
          ins env "mov r1, r0";
          ins env "pop r0";
          ins env "clreq"
      | _ -> err "__clreq expects (code, argp)");
      Tint
  | _ -> (
      match fsig with
      | None -> err "call to undefined function '%s'" name
      | Some { fs_ret; fs_params } ->
          if List.length args <> List.length fs_params then
            err "function '%s' expects %d arguments, got %d" name
              (List.length fs_params) (List.length args);
          (* push right-to-left so arg1 ends nearest the frame *)
          let total = ref 0 in
          List.iter2
            (fun a pt ->
              let pt = decay pt in
              let t = gen_expr env a in
              convert env t pt;
              push_value env pt;
              total := !total + align (ty_size pt) 4)
            (List.rev args) (List.rev fs_params);
          ins env "call %s" name;
          if !total > 0 then ins env "addi sp, %d" !total;
          decay fs_ret)

(* ------------------------------------------------------------------ *)
(* Statement codegen                                                    *)
(* ------------------------------------------------------------------ *)

let rec gen_stmt env (s : stmt) =
  match s with
  | Expr e -> ignore (gen_expr env e)
  | Decl (t, name, init) -> (
      (* slot was pre-assigned *)
      match init with
      | None -> ()
      | Some e ->
          let rt = gen_expr env e in
          convert env rt t;
          (match List.assoc_opt name env.locals with
          | Some (Local (_, off)) ->
              ins env
                (match decay t with
                | Tchar -> "stb [fp%+d], r0"
                | Tdouble -> "fst [fp%+d], f0"
                | _ -> "stw [fp%+d], r0")
                off
          | _ -> err "missing slot for local '%s'" name))
  | If (c, then_, else_) ->
      let lf = fresh_label env "if" in
      let le = fresh_label env "ie" in
      gen_cond_jump env c ~jump_if_false:lf;
      List.iter (gen_stmt env) then_;
      if else_ <> [] then ins env "jmp %s" le;
      label env lf;
      List.iter (gen_stmt env) else_;
      if else_ <> [] then label env le
  | While (c, body) ->
      let lh = fresh_label env "wh" in
      let le = fresh_label env "we" in
      label env lh;
      gen_cond_jump env c ~jump_if_false:le;
      env.breaks <- le :: env.breaks;
      env.continues <- lh :: env.continues;
      List.iter (gen_stmt env) body;
      env.breaks <- List.tl env.breaks;
      env.continues <- List.tl env.continues;
      ins env "jmp %s" lh;
      label env le
  | For (init, cond, step, body) ->
      Option.iter (gen_stmt env) init;
      let lh = fresh_label env "fh" in
      let lc = fresh_label env "fc" in
      let le = fresh_label env "fe" in
      label env lh;
      (match cond with
      | Some c -> gen_cond_jump env c ~jump_if_false:le
      | None -> ());
      env.breaks <- le :: env.breaks;
      env.continues <- lc :: env.continues;
      List.iter (gen_stmt env) body;
      env.breaks <- List.tl env.breaks;
      env.continues <- List.tl env.continues;
      label env lc;
      (match step with Some e -> ignore (gen_expr env e) | None -> ());
      ins env "jmp %s" lh;
      label env le
  | Return e ->
      (match e with
      | Some e ->
          let t = gen_expr env e in
          convert env t env.cur_ret
      | None -> ());
      ins env "jmp %s" env.cur_exit
  | Break -> (
      match env.breaks with
      | l :: _ -> ins env "jmp %s" l
      | [] -> err "break outside a loop")
  | Continue -> (
      match env.continues with
      | l :: _ -> ins env "jmp %s" l
      | [] -> err "continue outside a loop")
  | Block b -> List.iter (gen_stmt env) b

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let gen_global env (g : global) =
  let rec emit_init (t : ty) (i : ginit option) =
    match (t, i) with
    | Tdouble, Some (Gfloat f) -> dat env "        .f64 %h" f
    | Tdouble, Some (Gint n) -> dat env "        .f64 %h" (Int64.to_float n)
    | Tdouble, None -> dat env "        .f64 0.0"
    | (Tint | Tptr _), Some (Gint n) -> dat env "        .word %Ld" (Support.Bits.trunc32 n)
    | Tptr Tchar, Some (Gstr s) ->
        let l = Printf.sprintf ".str%d" env.str_n in
        env.str_n <- env.str_n + 1;
        dat env "%s: .asciz \"%s\"" l (String.concat "" (List.map (function '\n' -> "\\n" | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c) (List.init (String.length s) (String.get s))));
        dat env "        .word %s" l
    | (Tint | Tptr _), None -> dat env "        .word 0"
    | Tchar, Some (Gint n) -> dat env "        .byte %Ld" (Int64.logand n 0xFFL)
    | Tchar, None -> dat env "        .byte 0"
    | Tarray (Tchar, n), Some (Gstr s) ->
        let s = if String.length s >= n then String.sub s 0 n else s in
        dat env "        .ascii \"%s\"" (String.concat "" (List.map (function '\n' -> "\\n" | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c) (List.init (String.length s) (String.get s))));
        if String.length s < n then dat env "        .space %d" (n - String.length s)
    | Tarray (et, n), Some (Garray items) ->
        List.iter (fun it -> emit_init et (Some it)) items;
        let missing = n - List.length items in
        if missing > 0 then dat env "        .space %d" (missing * ty_size et)
    | Tarray (et, n), None -> dat env "        .space %d" (n * ty_size et)
    | t, _ -> err "unsupported global initialiser for type %a" pp_ty t
  in
  dat env "        .align %d" (match decay g.g_ty with Tdouble -> 8 | _ -> 4);
  (match g.g_ty with
  | Tarray (Tchar, _) | Tarray _ | Tint | Tptr _ | Tdouble | Tchar ->
      dat env "%s:" g.g_name
  | t -> err "unsupported global type %a" pp_ty t);
  emit_init g.g_ty g.g_init

let gen_func env (f : func) =
  let locals, frame = assign_locals f in
  env.locals <- locals;
  env.frame_size <- frame;
  env.cur_ret <- f.f_ret;
  env.cur_exit <- fresh_label env "ret";
  label env f.f_name;
  ins env "push fp";
  ins env "mov fp, sp";
  if frame > 0 then ins env "subi sp, %d" frame;
  List.iter (gen_stmt env) f.f_body;
  (* implicit return 0 *)
  ins env "movi r0, 0";
  label env env.cur_exit;
  ins env "mov sp, fp";
  ins env "pop fp";
  ins env "ret"

(** Compile a mini-C program (source text) to VG32 assembly text.  The
    result still needs the runtime start-up code — use {!Driver.compile}
    for a complete image. *)
let compile_to_asm (src : string) : string =
  let prog = Parser.parse_program src in
  let env =
    {
      buf = Buffer.create 4096;
      data = Buffer.create 1024;
      label_n = 0;
      str_n = 0;
      funcs = Hashtbl.create 32;
      globals = Hashtbl.create 32;
      locals = [];
      frame_size = 0;
      breaks = [];
      continues = [];
      cur_ret = Tint;
      cur_exit = "";
    }
  in
  (* collect signatures and globals first (so forward calls work) *)
  List.iter
    (function
      | Dfunc f | Dproto f ->
          Hashtbl.replace env.funcs f.f_name
            { fs_ret = f.f_ret; fs_params = List.map fst f.f_params }
      | Dglobal g -> Hashtbl.replace env.globals g.g_name g.g_ty)
    prog;
  Buffer.add_string env.buf "        .text\n";
  Buffer.add_string env.data "        .data\n";
  List.iter
    (function
      | Dfunc f -> gen_func env f
      | Dproto _ -> ()
      | Dglobal g -> gen_global env g)
    prog;
  Buffer.contents env.buf ^ Buffer.contents env.data
