(** Recursive-descent parser for mini-C (precedence climbing for binary
    operators). *)

open Ast
open Lexer

exception Error of { line : int; msg : string }

let perror lx fmt =
  Fmt.kstr (fun msg -> raise (Error { line = lx.Lexer.line; msg })) fmt

let expect_punct lx p =
  match next lx with
  | PUNCT q when q = p -> ()
  | t -> perror lx "expected '%s', got %a" p pp_token t

let accept_punct lx p =
  match peek lx with
  | PUNCT q when q = p ->
      ignore (next lx);
      true
  | _ -> false

let expect_ident lx =
  match next lx with
  | IDENT s -> s
  | t -> perror lx "expected identifier, got %a" pp_token t

(* base type: int / char / double / void *)
let parse_base_ty lx : ty option =
  match peek lx with
  | KW "int" -> ignore (next lx); Some Tint
  | KW "char" -> ignore (next lx); Some Tchar
  | KW "double" -> ignore (next lx); Some Tdouble
  | KW "void" -> ignore (next lx); Some Tvoid
  | _ -> None

let parse_ty lx : ty option =
  match parse_base_ty lx with
  | None -> None
  | Some base ->
      let t = ref base in
      while accept_punct lx "*" do
        t := Tptr !t
      done;
      Some !t

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let binop_of_punct = function
  | "+" -> Some (Add, 10)
  | "-" -> Some (Sub, 10)
  | "*" -> Some (Mul, 11)
  | "/" -> Some (Div, 11)
  | "%" -> Some (Mod, 11)
  | "<<" -> Some (Shl, 9)
  | ">>" -> Some (Shr, 9)
  | "<" -> Some (Lt, 8)
  | "<=" -> Some (Le, 8)
  | ">" -> Some (Gt, 8)
  | ">=" -> Some (Ge, 8)
  | "==" -> Some (Eq, 7)
  | "!=" -> Some (Ne, 7)
  | "&" -> Some (Band, 6)
  | "^" -> Some (Bxor, 5)
  | "|" -> Some (Bor, 4)
  | "&&" -> Some (And, 3)
  | "||" -> Some (Or, 2)
  | _ -> None

let rec parse_expr lx : expr = parse_assign lx

and parse_assign lx : expr =
  let lhs = parse_cond lx in
  match peek lx with
  | PUNCT "=" ->
      ignore (next lx);
      Assign (lhs, parse_assign lx)
  | PUNCT "+=" -> ignore (next lx); OpAssign (Add, lhs, parse_assign lx)
  | PUNCT "-=" -> ignore (next lx); OpAssign (Sub, lhs, parse_assign lx)
  | PUNCT "*=" -> ignore (next lx); OpAssign (Mul, lhs, parse_assign lx)
  | PUNCT "/=" -> ignore (next lx); OpAssign (Div, lhs, parse_assign lx)
  | PUNCT "%=" -> ignore (next lx); OpAssign (Mod, lhs, parse_assign lx)
  | _ -> lhs

and parse_cond lx : expr =
  let c = parse_bin lx 0 in
  if accept_punct lx "?" then begin
    let t = parse_expr lx in
    expect_punct lx ":";
    let e = parse_cond lx in
    Cond (c, t, e)
  end
  else c

and parse_bin lx min_prec : expr =
  let lhs = ref (parse_unary lx) in
  let continue_ = ref true in
  while !continue_ do
    match peek lx with
    | PUNCT p -> (
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            ignore (next lx);
            let rhs = parse_bin lx (prec + 1) in
            lhs := Bin (op, !lhs, rhs)
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary lx : expr =
  match peek lx with
  | PUNCT "-" ->
      ignore (next lx);
      Un (Neg, parse_unary lx)
  | PUNCT "!" ->
      ignore (next lx);
      Un (Not, parse_unary lx)
  | PUNCT "~" ->
      ignore (next lx);
      Un (Bnot, parse_unary lx)
  | PUNCT "*" ->
      ignore (next lx);
      Deref (parse_unary lx)
  | PUNCT "&" ->
      ignore (next lx);
      Addr (parse_unary lx)
  | PUNCT "(" -> (
      (* cast or parenthesised expression *)
      ignore (next lx);
      match parse_ty lx with
      | Some t ->
          expect_punct lx ")";
          Cast (t, parse_unary lx)
      | None ->
          let e = parse_expr lx in
          expect_punct lx ")";
          parse_postfix lx e)
  | KW "sizeof" ->
      ignore (next lx);
      expect_punct lx "(";
      let t =
        match parse_ty lx with
        | Some t -> t
        | None -> perror lx "sizeof expects a type"
      in
      expect_punct lx ")";
      Sizeof t
  | _ -> parse_primary lx

and parse_primary lx : expr =
  match next lx with
  | INT n -> parse_postfix lx (Int n)
  | FLOAT f -> parse_postfix lx (Float f)
  | STR s -> parse_postfix lx (Str s)
  | CHR c -> parse_postfix lx (Chr c)
  | IDENT name ->
      if accept_punct lx "(" then begin
        let args = ref [] in
        if not (accept_punct lx ")") then begin
          let rec go () =
            args := parse_expr lx :: !args;
            if accept_punct lx "," then go () else expect_punct lx ")"
          in
          go ()
        end;
        parse_postfix lx (Call (name, List.rev !args))
      end
      else parse_postfix lx (Var name)
  | t -> perror lx "unexpected token %a in expression" pp_token t

and parse_postfix lx (e : expr) : expr =
  if accept_punct lx "[" then begin
    let idx = parse_expr lx in
    expect_punct lx "]";
    parse_postfix lx (Index (e, idx))
  end
  else
    match peek lx with
    | PUNCT "++" ->
        ignore (next lx);
        parse_postfix lx (PostIncr e)
    | PUNCT "--" ->
        ignore (next lx);
        parse_postfix lx (PostDecr e)
    | _ -> e

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

(* declarator suffix: [N][M]... *)
let rec parse_array_suffix lx (base : ty) : ty =
  if accept_punct lx "[" then begin
    (* size: integer literal, optionally a product of literals (64*64) *)
    let lit () =
      match next lx with
      | INT n -> Int64.to_int n
      | t -> perror lx "expected array size, got %a" pp_token t
    in
    let n = ref (lit ()) in
    while accept_punct lx "*" do
      n := !n * lit ()
    done;
    expect_punct lx "]";
    let inner = parse_array_suffix lx base in
    Tarray (inner, !n)
  end
  else base

let rec parse_stmt lx : stmt =
  match peek lx with
  | PUNCT "{" ->
      ignore (next lx);
      let body = parse_block lx in
      Block body
  | KW "if" ->
      ignore (next lx);
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      let then_ = parse_stmt_as_block lx in
      let else_ =
        match peek lx with
        | KW "else" ->
            ignore (next lx);
            parse_stmt_as_block lx
        | _ -> []
      in
      If (c, then_, else_)
  | KW "while" ->
      ignore (next lx);
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      While (c, parse_stmt_as_block lx)
  | KW "for" ->
      ignore (next lx);
      expect_punct lx "(";
      let init =
        if accept_punct lx ";" then None
        else begin
          let s = parse_simple_stmt lx in
          expect_punct lx ";";
          Some s
        end
      in
      let cond = if accept_punct lx ";" then None
        else begin
          let e = parse_expr lx in
          expect_punct lx ";";
          Some e
        end
      in
      let step =
        if accept_punct lx ")" then None
        else begin
          let e = parse_expr lx in
          expect_punct lx ")";
          Some e
        end
      in
      For (init, cond, step, parse_stmt_as_block lx)
  | KW "return" ->
      ignore (next lx);
      if accept_punct lx ";" then Return None
      else begin
        let e = parse_expr lx in
        expect_punct lx ";";
        Return (Some e)
      end
  | KW "break" ->
      ignore (next lx);
      expect_punct lx ";";
      Break
  | KW "continue" ->
      ignore (next lx);
      expect_punct lx ";";
      Continue
  | _ ->
      let s = parse_simple_stmt lx in
      expect_punct lx ";";
      s

and parse_simple_stmt lx : stmt =
  match parse_ty lx with
  | Some t ->
      let name = expect_ident lx in
      let t = parse_array_suffix lx t in
      let init = if accept_punct lx "=" then Some (parse_expr lx) else None in
      Decl (t, name, init)
  | None -> Expr (parse_expr lx)

and parse_stmt_as_block lx : stmt list =
  match parse_stmt lx with Block b -> b | s -> [ s ]

and parse_block lx : stmt list =
  let stmts = ref [] in
  while not (accept_punct lx "}") do
    stmts := parse_stmt lx :: !stmts
  done;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_ginit lx : ginit =
  if accept_punct lx "{" then begin
    let items = ref [] in
    if not (accept_punct lx "}") then begin
      let rec go () =
        items := parse_ginit lx :: !items;
        if accept_punct lx "," then
          (if not (accept_punct lx "}") then go ())
        else expect_punct lx "}"
      in
      go ()
    end;
    Garray (List.rev !items)
  end
  else
    match next lx with
    | INT n -> Gint n
    | FLOAT f -> Gfloat f
    | STR s -> Gstr s
    | CHR c -> Gint (Int64.of_int (Char.code c))
    | PUNCT "-" -> (
        match next lx with
        | INT n -> Gint (Int64.neg n)
        | FLOAT f -> Gfloat (-.f)
        | t -> perror lx "bad initialiser, got %a" pp_token t)
    | t -> perror lx "bad initialiser, got %a" pp_token t

let parse_program (src : string) : program =
  let lx = Lexer.create src in
  let decls = ref [] in
  let rec go () =
    match peek lx with
    | EOF -> ()
    | _ ->
        let ty =
          match parse_ty lx with
          | Some t -> t
          | None -> perror lx "expected a declaration"
        in
        let name = expect_ident lx in
        if accept_punct lx "(" then begin
          (* function definition or prototype *)
          let params = ref [] in
          if not (accept_punct lx ")") then begin
            let rec go_params () =
              let pt =
                match parse_ty lx with
                | Some t -> t
                | None -> perror lx "expected parameter type"
              in
              let pn = expect_ident lx in
              params := (pt, pn) :: !params;
              if accept_punct lx "," then go_params () else expect_punct lx ")"
            in
            go_params ()
          end;
          if accept_punct lx ";" then
            (* forward declaration: signature only, no body emitted *)
            decls :=
              Dproto
                { f_name = name; f_ret = ty; f_params = List.rev !params;
                  f_body = [] }
              :: !decls
          else begin
            expect_punct lx "{";
            let body = parse_block lx in
            decls :=
              Dfunc
                { f_name = name; f_ret = ty; f_params = List.rev !params; f_body = body }
              :: !decls
          end
        end
        else begin
          (* global *)
          let ty = parse_array_suffix lx ty in
          let init = if accept_punct lx "=" then Some (parse_ginit lx) else None in
          expect_punct lx ";";
          decls := Dglobal { g_name = name; g_ty = ty; g_init = init } :: !decls
        end;
        go ()
  in
  go ();
  List.rev !decls
