(** AST for mini-C, the small C-like language the benchmark programs and
    the guest libc are written in (the substitute for the paper's
    GCC-compiled SPEC clients — see DESIGN.md §1). *)

type ty =
  | Tint  (** 32-bit signed *)
  | Tchar  (** 8-bit unsigned in memory, int-width in registers *)
  | Tdouble
  | Tptr of ty
  | Tarray of ty * int
  | Tvoid

let rec ty_size = function
  | Tint -> 4
  | Tchar -> 1
  | Tdouble -> 8
  | Tptr _ -> 4
  | Tarray (t, n) -> ty_size t * n
  | Tvoid -> 0

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tchar -> Fmt.string ppf "char"
  | Tdouble -> Fmt.string ppf "double"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp_ty t n
  | Tvoid -> Fmt.string ppf "void"

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or  (** short-circuit *)
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Not | Bnot

type expr =
  | Int of int64
  | Float of float
  | Str of string
  | Chr of char
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of expr * expr  (** lvalue = rvalue *)
  | OpAssign of binop * expr * expr  (** lvalue op= rvalue *)
  | Call of string * expr list
  | Index of expr * expr  (** a[i] *)
  | Deref of expr
  | Addr of expr
  | Cast of ty * expr
  | Sizeof of ty
  | Cond of expr * expr * expr  (** c ? t : e *)
  | PostIncr of expr
  | PostDecr of expr

type stmt =
  | Expr of expr
  | Decl of ty * string * expr option
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * expr option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list

type func = {
  f_name : string;
  f_ret : ty;
  f_params : (ty * string) list;
  f_body : stmt list;
}

type global = {
  g_name : string;
  g_ty : ty;
  g_init : ginit option;
}

and ginit =
  | Gint of int64
  | Gfloat of float
  | Gstr of string
  | Garray of ginit list

type decl =
  | Dfunc of func
  | Dglobal of global
  | Dproto of func  (** forward declaration: body ignored *)

type program = decl list
