(** The benchmark suite: mini-C kernels shaped after the SPEC CPU2000
    programs of Table 2 (DESIGN.md explains the substitution: the
    paper's clients are GCC-compiled C programs; ours are
    minicc-compiled mini-C programs exercising the same instruction
    mixes — integer ALU + branches, pointer chasing, string handling,
    heap churn, and FP loops).

    Every workload is deterministic, prints a checksum (so tool
    transparency can be asserted), and takes a [scale] factor. *)

type category = Int_ | Fp

type workload = {
  w_name : string;
  w_cat : category;
  w_source : scale:int -> string;  (** mini-C source *)
}

let sprintf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* Integer programs                                                     *)
(* ------------------------------------------------------------------ *)

(* bzip2: run-length + move-to-front coding over a pseudo-random buffer *)
let bzip2 ~scale =
  sprintf
    {|
int buf[2048];
int mtf[256];
int main() {
  int i; int r; int sum; int run; int prev; int j; int v; int pos;
  srand(42);
  sum = 0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 2048; i++) { buf[i] = rand() %% 64; }
    /* run-length pass */
    run = 0; prev = -1;
    for (i = 0; i < 2048; i++) {
      if (buf[i] == prev) { run++; }
      else { sum = sum + run * prev; run = 1; prev = buf[i]; }
    }
    /* move-to-front pass */
    for (i = 0; i < 256; i++) { mtf[i] = i; }
    for (i = 0; i < 2048; i++) {
      v = buf[i]; pos = 0;
      while (mtf[pos] != v) { pos++; }
      for (j = pos; j > 0; j--) { mtf[j] = mtf[j-1]; }
      mtf[0] = v;
      sum = sum + pos;
    }
  }
  print_str("bzip2 "); print_int(sum); print_str("\n");
  return 0;
}
|}
    (1 * scale)

(* crafty: bitboard-style shifting/masking/popcount *)
let crafty ~scale =
  sprintf
    {|
int popcount(int x) {
  int n;
  n = 0;
  while (x != 0) { n = n + (x & 1); x = (x >> 1) & 2147483647; }
  return n;
}
int main() {
  int board; int moves; int i; int r; int att; int sum;
  srand(7);
  sum = 0;
  for (r = 0; r < %d; r++) {
    board = rand() * 65536 + rand();
    moves = 0;
    for (i = 0; i < 2000; i++) {
      att = (board << 1) ^ (board >> 3) ^ (board << 7);
      att = att & ~board;
      moves = moves + popcount(att & 65535);
      board = board ^ (att << 2) ^ i;
    }
    sum = sum + moves;
  }
  print_str("crafty "); print_int(sum); print_str("\n");
  return 0;
}
|}
    (4 * scale)

(* eon: FP ray-sphere intersection batches *)
let eon ~scale =
  sprintf
    {|
int main() {
  int i; int r; int hits; double ox; double oy; double oz;
  double dx; double dy; double dz; double b; double c; double disc;
  double t; double acc;
  srand(3);
  hits = 0; acc = 0.0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 3000; i++) {
      ox = (double)(rand() %% 100) / 10.0 - 5.0;
      oy = (double)(rand() %% 100) / 10.0 - 5.0;
      oz = -10.0;
      dx = 0.0; dy = 0.0; dz = 1.0;
      b = 2.0 * (ox*dx + oy*dy + oz*dz);
      c = ox*ox + oy*oy + oz*oz - 9.0;
      disc = b*b - 4.0*c;
      if (disc >= 0.0) {
        t = (0.0 - b - sqrt(disc)) / 2.0;
        acc = acc + t;
        hits++;
      }
    }
  }
  print_str("eon "); print_int(hits); print_str(" ");
  print_double(acc / 1000.0); print_str("\n");
  return 0;
}
|}
    (2 * scale)

(* gap: permutation-group composition and order computation *)
let gap ~scale =
  sprintf
    {|
int p[64]; int q[64]; int tmp[64];
int main() {
  int i; int r; int n; int ord; int sum; int ident;
  srand(11);
  n = 64; sum = 0;
  for (r = 0; r < %d; r++) {
    /* random permutation by swaps */
    for (i = 0; i < n; i++) { p[i] = i; }
    for (i = 0; i < n; i++) {
      int j; int t;
      j = rand() %% n;
      t = p[i]; p[i] = p[j]; p[j] = t;
    }
    /* order of p by repeated composition (capped) */
    for (i = 0; i < n; i++) { q[i] = p[i]; }
    ord = 1;
    ident = 0;
    while (!ident && ord < 500) {
      ident = 1;
      for (i = 0; i < n; i++) { if (q[i] != i) { ident = 0; } }
      if (!ident) {
        for (i = 0; i < n; i++) { tmp[i] = q[p[i]]; }
        for (i = 0; i < n; i++) { q[i] = tmp[i]; }
        ord++;
      }
    }
    sum = sum + ord;
  }
  print_str("gap "); print_int(sum); print_str("\n");
  return 0;
}
|}
    (3 * scale)

(* gcc: allocate, transform and fold expression trees (pointer heavy) *)
let gcc ~scale =
  sprintf
    {|
/* node: [0]=op, [1]=val, [2]=left, [3]=right */
int *mknode(int op, int val, int *l, int *r) {
  int *n;
  n = (int*)malloc(16);
  n[0] = op; n[1] = val; n[2] = (int)l; n[3] = (int)r;
  return n;
}
int *build(int depth, int seed) {
  if (depth == 0) { return mknode(0, seed %% 100, (int*)0, (int*)0); }
  return mknode(1 + seed %% 3, 0,
                build(depth - 1, seed * 7 + 1),
                build(depth - 1, seed * 13 + 5));
}
int fold(int *n) {
  int a; int b; int op;
  op = n[0];
  if (op == 0) { return n[1]; }
  a = fold((int*)n[2]);
  b = fold((int*)n[3]);
  if (op == 1) { return a + b; }
  if (op == 2) { return a - b; }
  return a * b;
}
void freetree(int *n) {
  if (n[0] != 0) { freetree((int*)n[2]); freetree((int*)n[3]); }
  free((char*)n);
}
int main() {
  int r; int sum; int *t;
  sum = 0;
  for (r = 0; r < %d; r++) {
    t = build(9, r + 3);
    sum = sum + fold(t);
    freetree(t);
  }
  print_str("gcc "); print_int(sum); print_str("\n");
  return 0;
}
|}
    (10 * scale)

(* gzip: LZ77-style longest-match search in a sliding window *)
let gzip ~scale =
  sprintf
    {|
char data[8192];
int main() {
  int i; int j; int r; int pos; int best; int len; int start; int matched;
  srand(5);
  matched = 0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 8192; i++) { data[i] = (char)(rand() %% 16 + 'a'); }
    pos = 128;
    while (pos < 1600) {
      best = 0;
      for (start = pos - 128; start < pos; start++) {
        len = 0;
        while (len < 32 && data[start + len] == data[pos + len]) { len++; }
        if (len > best) { best = len; }
      }
      if (best > 2) { pos = pos + best; matched = matched + best; }
      else { pos = pos + 1; }
    }
  }
  print_str("gzip "); print_int(matched); print_str("\n");
  return 0;
}
|}
    (1 * scale)

(* mcf: Bellman-Ford relaxation over a random sparse graph *)
let mcf ~scale =
  sprintf
    {|
int dist[512];
int eu[2048]; int ev[2048]; int ew[2048];
int main() {
  int n; int m; int i; int k; int r; int changed; int sum;
  srand(9);
  n = 512; m = 2048; sum = 0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < m; i++) {
      eu[i] = rand() %% n; ev[i] = rand() %% n; ew[i] = rand() %% 100 + 1;
    }
    for (i = 0; i < n; i++) { dist[i] = 1000000; }
    dist[0] = 0;
    changed = 1; k = 0;
    while (changed && k < 30) {
      changed = 0;
      for (i = 0; i < m; i++) {
        if (dist[eu[i]] + ew[i] < dist[ev[i]]) {
          dist[ev[i]] = dist[eu[i]] + ew[i];
          changed = 1;
        }
      }
      k++;
    }
    for (i = 0; i < n; i++) { if (dist[i] < 1000000) { sum = sum + dist[i]; } }
  }
  print_str("mcf "); print_int(sum); print_str("\n");
  return 0;
}
|}
    (2 * scale)

(* parser: tokenise and evaluate generated arithmetic expressions *)
let parser ~scale =
  sprintf
    {|
char expr[256];
int pos;
int parse_term();
int parse_factor() {
  int v;
  v = 0;
  if (expr[pos] == '(') {
    pos++;
    v = parse_term();
    pos++;           /* ')' */
    return v;
  }
  while (expr[pos] >= '0' && expr[pos] <= '9') {
    v = v * 10 + (expr[pos] - '0');
    pos++;
  }
  return v;
}
int parse_prod() {
  int v;
  v = parse_factor();
  while (expr[pos] == '*') { pos++; v = v * parse_factor(); }
  return v;
}
int parse_term() {
  int v;
  v = parse_prod();
  while (expr[pos] == '+' || expr[pos] == '-') {
    if (expr[pos] == '+') { pos++; v = v + parse_prod(); }
    else { pos++; v = v - parse_prod(); }
  }
  return v;
}
int main() {
  int r; int i; int sum; int n;
  srand(13);
  sum = 0;
  for (r = 0; r < %d; r++) {
    /* generate: d op d op d ... *)  */
    n = 0;
    expr[n] = (char)('1' + rand() %% 9); n++;
    for (i = 0; i < 40; i++) {
      int op;
      op = rand() %% 3;
      if (op == 0) { expr[n] = '+'; }
      if (op == 1) { expr[n] = '-'; }
      if (op == 2) { expr[n] = '*'; }
      n++;
      expr[n] = (char)('1' + rand() %% 9); n++;
    }
    expr[n] = 0;
    pos = 0;
    sum = sum + parse_term();
  }
  print_str("parser "); print_int(sum); print_str("\n");
  return 0;
}
|}
    (400 * scale)

(* perlbmk: string hashing into chained hash tables *)
let perlbmk ~scale =
  sprintf
    {|
int heads[1024];
int main() {
  int r; int i; int j; int h; int sum; int found;
  int *node; int *cur;
  char key[16];
  srand(17);
  sum = 0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 1024; i++) { heads[i] = 0; }
    for (i = 0; i < 800; i++) {
      /* make a key */
      for (j = 0; j < 8; j++) { key[j] = (char)('a' + rand() %% 26); }
      key[8] = 0;
      h = 5381;
      for (j = 0; key[j] != 0; j++) { h = h * 33 + key[j]; }
      h = (h & 2147483647) %% 1024;
      /* insert: node = [hash, next] */
      node = (int*)malloc(8);
      node[0] = h; node[1] = heads[h];
      heads[h] = (int)node;
    }
    /* probe *)  */
    found = 0;
    for (i = 0; i < 1024; i++) {
      cur = (int*)heads[i];
      while ((int)cur != 0) {
        found++;
        cur = (int*)cur[1];
      }
    }
    sum = sum + found;
    /* teardown */
    for (i = 0; i < 1024; i++) {
      cur = (int*)heads[i];
      while ((int)cur != 0) {
        int *nxt;
        nxt = (int*)cur[1];
        free((char*)cur);
        cur = nxt;
      }
    }
  }
  print_str("perlbmk "); print_int(sum); print_str("\n");
  return 0;
}
|}
    (4 * scale)

(* twolf: annealing-style swap acceptance over a placement grid *)
let twolf ~scale =
  sprintf
    {|
int cell[1024];
int cost_at(int i) {
  int c; int left; int right;
  left = i - 1; right = i + 1;
  if (left < 0) { left = 1023; }
  if (right > 1023) { right = 0; }
  c = abs(cell[i] - cell[left]) + abs(cell[i] - cell[right]);
  return c;
}
int main() {
  int r; int i; int a; int b; int t; int before; int after; int accepted;
  srand(23);
  accepted = 0;
  for (i = 0; i < 1024; i++) { cell[i] = rand() %% 256; }
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 4000; i++) {
      a = rand() %% 1024; b = rand() %% 1024;
      before = cost_at(a) + cost_at(b);
      t = cell[a]; cell[a] = cell[b]; cell[b] = t;
      after = cost_at(a) + cost_at(b);
      if (after > before + (rand() %% 8)) {
        /* reject: swap back */
        t = cell[a]; cell[a] = cell[b]; cell[b] = t;
      } else { accepted++; }
    }
  }
  print_str("twolf "); print_int(accepted); print_str("\n");
  return 0;
}
|}
    (2 * scale)

(* vortex: object database — insert/lookup/delete with linked records *)
let vortex ~scale =
  sprintf
    {|
int index_[512];
int n_live;
int main() {
  int r; int i; int id; int h; int sum; int *obj; int *cur; int *prev;
  srand(29);
  sum = 0; n_live = 0;
  for (i = 0; i < 512; i++) { index_[i] = 0; }
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 2000; i++) {
      id = rand() %% 4096;
      h = id %% 512;
      if (rand() %% 3 != 0) {
        /* insert object [id, payload, next] */
        obj = (int*)malloc(12);
        obj[0] = id; obj[1] = id * 3 + 1; obj[2] = index_[h];
        index_[h] = (int)obj;
        n_live++;
      } else {
        /* delete first match */
        prev = (int*)0;
        cur = (int*)index_[h];
        while ((int)cur != 0 && cur[0] != id) { prev = cur; cur = (int*)cur[2]; }
        if ((int)cur != 0) {
          if ((int)prev == 0) { index_[h] = cur[2]; }
          else { prev[2] = cur[2]; }
          sum = sum + cur[1];
          free((char*)cur);
          n_live = n_live - 1;
        }
      }
    }
  }
  print_str("vortex "); print_int(sum + n_live); print_str("\n");
  return 0;
}
|}
    (4 * scale)

(* vpr: BFS maze routing on a grid with obstacles *)
let vpr ~scale =
  sprintf
    {|
int grid[4096];     /* 64x64: 0 free, 1 blocked */
int distm[4096];
int queue[8192];
int main() {
  int r; int i; int head; int tail; int cur; int x; int y; int sum; int t;
  srand(31);
  sum = 0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 4096; i++) {
      grid[i] = 0;
      if (rand() %% 5 == 0) { grid[i] = 1; }
      distm[i] = -1;
    }
    grid[0] = 0; grid[4095] = 0;
    head = 0; tail = 0;
    queue[tail] = 0; tail++;
    distm[0] = 0;
    while (head < tail) {
      cur = queue[head]; head++;
      x = cur %% 64; y = cur / 64;
      if (x > 0) { t = cur - 1;
        if (grid[t] == 0 && distm[t] < 0) { distm[t] = distm[cur] + 1; queue[tail] = t; tail++; } }
      if (x < 63) { t = cur + 1;
        if (grid[t] == 0 && distm[t] < 0) { distm[t] = distm[cur] + 1; queue[tail] = t; tail++; } }
      if (y > 0) { t = cur - 64;
        if (grid[t] == 0 && distm[t] < 0) { distm[t] = distm[cur] + 1; queue[tail] = t; tail++; } }
      if (y < 63) { t = cur + 64;
        if (grid[t] == 0 && distm[t] < 0) { distm[t] = distm[cur] + 1; queue[tail] = t; tail++; } }
    }
    sum = sum + distm[4095] + tail;
  }
  print_str("vpr "); print_int(sum); print_str("\n");
  return 0;
}
|}
    (4 * scale)

(* ------------------------------------------------------------------ *)
(* Floating-point programs                                              *)
(* ------------------------------------------------------------------ *)

(* ammp: n-body force accumulation *)
let ammp ~scale =
  sprintf
    {|
double px[128]; double py[128]; double pz[128];
double fx[128]; double fy[128]; double fz[128];
int main() {
  int r; int i; int j; double dx; double dy; double dz; double d2; double f;
  double total;
  srand(37);
  for (i = 0; i < 128; i++) {
    px[i] = (double)(rand() %% 1000) / 100.0;
    py[i] = (double)(rand() %% 1000) / 100.0;
    pz[i] = (double)(rand() %% 1000) / 100.0;
  }
  total = 0.0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 128; i++) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
    for (i = 0; i < 128; i++) {
      for (j = i + 1; j < 128; j++) {
        dx = px[j] - px[i]; dy = py[j] - py[i]; dz = pz[j] - pz[i];
        d2 = dx*dx + dy*dy + dz*dz + 0.1;
        f = 1.0 / (d2 * sqrt(d2));
        fx[i] = fx[i] + f*dx; fy[i] = fy[i] + f*dy; fz[i] = fz[i] + f*dz;
        fx[j] = fx[j] - f*dx; fy[j] = fy[j] - f*dy; fz[j] = fz[j] - f*dz;
      }
    }
    total = total + fx[0] + fy[64] + fz[127];
  }
  print_str("ammp "); print_double(total); print_str("\n");
  return 0;
}
|}
    (2 * scale)

(* applu: successive over-relaxation sweeps on a 2D grid *)
let applu ~scale =
  sprintf
    {|
double u[4096];
int main() {
  int r; int it; int i; int j; double sum;
  for (i = 0; i < 4096; i++) { u[i] = 0.0; }
  for (i = 0; i < 64; i++) { u[i] = 1.0; }            /* top boundary */
  sum = 0.0;
  for (r = 0; r < %d; r++) {
    for (it = 0; it < 12; it++) {
      for (i = 1; i < 63; i++) {
        for (j = 1; j < 63; j++) {
          u[i*64+j] = 0.25 * (u[(i-1)*64+j] + u[(i+1)*64+j]
                              + u[i*64+j-1] + u[i*64+j+1]);
        }
      }
    }
    sum = sum + u[32*64+32];
  }
  print_str("applu "); print_double(sum * 1000.0); print_str("\n");
  return 0;
}
|}
    (1 * scale)

(* art: neural-net style dot products with winner-take-all *)
let art ~scale =
  sprintf
    {|
double w[32*64];
double input[64];
int main() {
  int r; int i; int j; int winner; int wins[32]; double act; double best;
  srand(41);
  for (i = 0; i < 2048; i++) { w[i] = (double)(rand() %% 100) / 100.0; }
  for (i = 0; i < 32; i++) { wins[i] = 0; }
  for (r = 0; r < %d; r++) {
    for (j = 0; j < 64; j++) { input[j] = (double)(rand() %% 100) / 100.0; }
    winner = 0; best = -1.0;
    for (i = 0; i < 32; i++) {
      act = 0.0;
      for (j = 0; j < 64; j++) { act = act + w[i*64+j] * input[j]; }
      if (act > best) { best = act; winner = i; }
    }
    wins[winner]++;
    /* adapt winner towards input */
    for (j = 0; j < 64; j++) {
      w[winner*64+j] = 0.9 * w[winner*64+j] + 0.1 * input[j];
    }
  }
  print_str("art "); print_int(wins[0] + wins[31] * 3); print_str("\n");
  return 0;
}
|}
    (60 * scale)

(* equake: sparse matrix-vector products (indirection + FP) *)
let equake ~scale =
  sprintf
    {|
int col[8192];
double val[8192];
double x[1024]; double y[1024];
int rowstart[1025];
int main() {
  int r; int i; int k; double acc; double sum;
  srand(43);
  /* 8 nonzeros per row */
  for (i = 0; i <= 1024; i++) { rowstart[i] = i * 8; }
  for (i = 0; i < 8192; i++) {
    col[i] = rand() %% 1024;
    val[i] = (double)(rand() %% 100) / 50.0 - 1.0;
  }
  for (i = 0; i < 1024; i++) { x[i] = 1.0; }
  sum = 0.0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 1024; i++) {
      acc = 0.0;
      for (k = rowstart[i]; k < rowstart[i+1]; k++) {
        acc = acc + val[k] * x[col[k]];
      }
      y[i] = acc;
    }
    /* x = normalised y */
    for (i = 0; i < 1024; i++) { x[i] = y[i] * 0.125; }
    sum = sum + x[512];
  }
  print_str("equake "); print_double(sum); print_str("\n");
  return 0;
}
|}
    (15 * scale)

(* lucas: Lucas-Lehmer-flavoured modular FP arithmetic *)
let lucas ~scale =
  sprintf
    {|
int main() {
  int r; int i; double s; double m; double sum;
  sum = 0.0;
  m = 8191.0;
  for (r = 0; r < %d; r++) {
    s = 4.0;
    for (i = 0; i < 20000; i++) {
      s = s * s - 2.0;
      /* fmod via trunc */
      s = s - (double)((int)(s / m)) * m;
      if (s < 0.0) { s = s + m; }
    }
    sum = sum + s;
  }
  print_str("lucas "); print_double(sum); print_str("\n");
  return 0;
}
|}
    (3 * scale)

(* mesa: scanline interpolation (FP rasterising) *)
let mesa ~scale =
  sprintf
    {|
double zbuf[64*64];
int fb[64*64];
int main() {
  int r; int t; int x; int y; int drawn; double z0; double dzx; double dzy;
  double z;
  srand(47);
  drawn = 0;
  for (r = 0; r < %d; r++) {
    for (x = 0; x < 4096; x++) { zbuf[x] = 1000000.0; fb[x] = 0; }
    for (t = 0; t < 40; t++) {
      z0 = (double)(rand() %% 100);
      dzx = (double)(rand() %% 10 - 5) / 10.0;
      dzy = (double)(rand() %% 10 - 5) / 10.0;
      for (y = 0; y < 64; y++) {
        z = z0 + dzy * (double)y;
        for (x = 0; x < 64; x++) {
          if (z < zbuf[y*64+x]) {
            zbuf[y*64+x] = z;
            fb[y*64+x] = t;
            drawn++;
          }
          z = z + dzx;
        }
      }
    }
  }
  print_str("mesa "); print_int(drawn); print_str("\n");
  return 0;
}
|}
    (1 * scale)

(* mgrid: two-level multigrid-ish smoothing *)
let mgrid ~scale =
  sprintf
    {|
double fine[4096];
double coarse[1024];
int main() {
  int r; int i; int j; int it; double sum;
  srand(53);
  for (i = 0; i < 4096; i++) { fine[i] = (double)(rand() %% 100) / 100.0; }
  sum = 0.0;
  for (r = 0; r < %d; r++) {
    /* restrict */
    for (i = 0; i < 32; i++) {
      for (j = 0; j < 32; j++) {
        coarse[i*32+j] = 0.25 * (fine[(2*i)*64+2*j] + fine[(2*i+1)*64+2*j]
                                 + fine[(2*i)*64+2*j+1] + fine[(2*i+1)*64+2*j+1]);
      }
    }
    /* smooth coarse */
    for (it = 0; it < 6; it++) {
      for (i = 1; i < 31; i++) {
        for (j = 1; j < 31; j++) {
          coarse[i*32+j] = 0.2 * (coarse[i*32+j] + coarse[(i-1)*32+j]
                                  + coarse[(i+1)*32+j] + coarse[i*32+j-1]
                                  + coarse[i*32+j+1]);
        }
      }
    }
    /* prolongate + relax fine */
    for (i = 0; i < 64; i++) {
      for (j = 0; j < 64; j++) {
        fine[i*64+j] = 0.5 * fine[i*64+j] + 0.5 * coarse[(i/2)*32+(j/2)];
      }
    }
    sum = sum + fine[2080];
  }
  print_str("mgrid "); print_double(sum); print_str("\n");
  return 0;
}
|}
    (3 * scale)

(* swim: shallow-water style 2-array stencil update *)
let swim ~scale =
  sprintf
    {|
double h[4096]; double v[4096];
int main() {
  int r; int i; int j; int it; double sum;
  for (i = 0; i < 4096; i++) { h[i] = 1.0; v[i] = 0.0; }
  h[32*64+32] = 3.0;
  sum = 0.0;
  for (r = 0; r < %d; r++) {
    for (it = 0; it < 6; it++) {
      for (i = 1; i < 63; i++) {
        for (j = 1; j < 63; j++) {
          v[i*64+j] = v[i*64+j]
            + 0.1 * (h[(i-1)*64+j] + h[(i+1)*64+j] + h[i*64+j-1] + h[i*64+j+1]
                     - 4.0 * h[i*64+j]);
        }
      }
      for (i = 1; i < 63; i++) {
        for (j = 1; j < 63; j++) {
          h[i*64+j] = h[i*64+j] + 0.1 * v[i*64+j];
        }
      }
    }
    sum = sum + h[40*64+40];
  }
  print_str("swim "); print_double(sum * 1000.0); print_str("\n");
  return 0;
}
|}
    (1 * scale)

(* wupwise: complex matrix-vector multiply-accumulate *)
let wupwise ~scale =
  sprintf
    {|
double ar[32*32]; double ai[32*32];
double xr[32]; double xi[32];
double yr[32]; double yi[32];
int main() {
  int r; int i; int j; double tr; double ti; double sum;
  srand(59);
  for (i = 0; i < 1024; i++) {
    ar[i] = (double)(rand() %% 200 - 100) / 100.0;
    ai[i] = (double)(rand() %% 200 - 100) / 100.0;
  }
  for (i = 0; i < 32; i++) { xr[i] = 1.0; xi[i] = 0.5; }
  sum = 0.0;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < 32; i++) {
      tr = 0.0; ti = 0.0;
      for (j = 0; j < 32; j++) {
        tr = tr + ar[i*32+j]*xr[j] - ai[i*32+j]*xi[j];
        ti = ti + ar[i*32+j]*xi[j] + ai[i*32+j]*xr[j];
      }
      yr[i] = tr; yi[i] = ti;
    }
    for (i = 0; i < 32; i++) {
      xr[i] = yr[i] * 0.05; xi[i] = yi[i] * 0.05;
    }
    sum = sum + xr[7] + xi[21];
  }
  print_str("wupwise "); print_double(sum); print_str("\n");
  return 0;
}
|}
    (40 * scale)

(* apsi: mixed advection/diffusion passes *)
let apsi ~scale =
  sprintf
    {|
double temp[4096]; double wind[4096];
int main() {
  int r; int i; int j; int it; double sum;
  srand(61);
  for (i = 0; i < 4096; i++) {
    temp[i] = 20.0 + (double)(rand() %% 100) / 50.0;
    wind[i] = (double)(rand() %% 40 - 20) / 10.0;
  }
  sum = 0.0;
  for (r = 0; r < %d; r++) {
    for (it = 0; it < 4; it++) {
      /* advection along rows by wind sign */
      for (i = 0; i < 64; i++) {
        for (j = 1; j < 63; j++) {
          if (wind[i*64+j] > 0.0) {
            temp[i*64+j] = temp[i*64+j]
              - 0.1 * wind[i*64+j] * (temp[i*64+j] - temp[i*64+j-1]);
          } else {
            temp[i*64+j] = temp[i*64+j]
              - 0.1 * wind[i*64+j] * (temp[i*64+j+1] - temp[i*64+j]);
          }
        }
      }
      /* vertical diffusion */
      for (i = 1; i < 63; i++) {
        for (j = 0; j < 64; j++) {
          temp[i*64+j] = temp[i*64+j]
            + 0.05 * (temp[(i-1)*64+j] + temp[(i+1)*64+j] - 2.0*temp[i*64+j]);
        }
      }
    }
    sum = sum + temp[33*64+33];
  }
  print_str("apsi "); print_double(sum); print_str("\n");
  return 0;
}
|}
    (1 * scale)

(* ------------------------------------------------------------------ *)
(* The suite                                                            *)
(* ------------------------------------------------------------------ *)

let all : workload list =
  [
    { w_name = "bzip2"; w_cat = Int_; w_source = bzip2 };
    { w_name = "crafty"; w_cat = Int_; w_source = crafty };
    { w_name = "eon"; w_cat = Int_ (* C++/FP mix; listed with integer in the paper *); w_source = eon };
    { w_name = "gap"; w_cat = Int_; w_source = gap };
    { w_name = "gcc"; w_cat = Int_; w_source = gcc };
    { w_name = "gzip"; w_cat = Int_; w_source = gzip };
    { w_name = "mcf"; w_cat = Int_; w_source = mcf };
    { w_name = "parser"; w_cat = Int_; w_source = parser };
    { w_name = "perlbmk"; w_cat = Int_; w_source = perlbmk };
    { w_name = "twolf"; w_cat = Int_; w_source = twolf };
    { w_name = "vortex"; w_cat = Int_; w_source = vortex };
    { w_name = "vpr"; w_cat = Int_; w_source = vpr };
    { w_name = "ammp"; w_cat = Fp; w_source = ammp };
    { w_name = "applu"; w_cat = Fp; w_source = applu };
    { w_name = "apsi"; w_cat = Fp; w_source = apsi };
    { w_name = "art"; w_cat = Fp; w_source = art };
    { w_name = "equake"; w_cat = Fp; w_source = equake };
    { w_name = "lucas"; w_cat = Fp; w_source = lucas };
    { w_name = "mesa"; w_cat = Fp; w_source = mesa };
    { w_name = "mgrid"; w_cat = Fp; w_source = mgrid };
    { w_name = "swim"; w_cat = Fp; w_source = swim };
    { w_name = "wupwise"; w_cat = Fp; w_source = wupwise };
  ]

let find name = List.find_opt (fun w -> w.w_name = name) all

(** Compile a workload at a given scale. *)
let compile ?(scale = 1) (w : workload) : Guest.Image.t =
  Minicc.Driver.compile (w.w_source ~scale)
