(** A copy-and-annotate (C&A) DBI framework on VG32 — the stand-in for
    Pin/DynamoRIO in the paper's comparisons (§3.5, §5.3, §5.4).

    Where Valgrind disassembles-and-resynthesises, a C&A framework
    copies incoming instructions through verbatim and lets the tool
    attach analysis code guided by per-instruction {e annotations} (an
    instruction-querying API, like Pin's).  Consequences modelled here,
    following the paper:

    - original code stays close to native speed: per-instruction base
      cost is the native cost, plus a small per-trace dispatch cost
      (traces are chained, unlike the paper's Valgrind);
    - condition codes come "for free" — but every inline analysis
      fragment inserted where flags are live must save and restore them
      ([flag_save_cost]), which is what makes {e heavyweight} C&A tools
      degrade;
    - analysis code is written as calls (compiled separately, Pin-style)
      or limited "inlinable" fragments; it is {e less expressive} than
      client code — in particular there are no 128-bit virtual
      registers, so a tool asking to shadow V128 state gets
      [Unsupported] (the Pin limitation §5.3 reports), and FP analysis
      code cannot be written inline at all. *)

open Guest.Arch

exception Unsupported of string

(** What the framework tells a tool about one instruction (the
    annotation / instruction-query API). *)
type ins_info = {
  ii_addr : int64;
  ii_len : int;
  ii_insn : Guest.Arch.insn;
  ii_reads_mem : bool;
  ii_writes_mem : bool;
  ii_mem_size : int;  (** 0 if no memory access *)
  ii_is_branch : bool;
  ii_is_fp : bool;
  ii_is_simd : bool;
  ii_sets_flags : bool;
}

(** Runtime context passed to analysis callbacks. *)
type ctx = {
  cx_regs : int64 array;  (** guest registers, read-only view *)
  cx_addr : int64;  (** effective address of the access, if any *)
  cx_pc : int64;
}

(** Analysis code attached to an instruction. *)
type analysis = {
  an_fn : ctx -> unit;
  an_inline : bool;
      (** inline fragments must be straight-line integer code (no FP, no
          SIMD, no control flow) — the tool asserts this by
          construction; calls may do anything *)
  an_cost : int;  (** cycle cost of the fragment body *)
}

(** A C&A tool: inspects each instruction once (at trace-build time) and
    returns the analysis to attach before it. *)
type tool = {
  t_name : string;
  t_instrument : ins_info -> analysis list;
  t_wants_shadow_v128 : bool;
      (** requesting full 128-bit shadow registers is refused, like Pin *)
  t_fini : (unit -> unit) option;
}

(* cost model *)
let call_overhead = 10 (* spill args, call, return *)
let flag_save_cost = 6 (* pushf/popf around inline analysis when flags live *)
let trace_dispatch_cost = 2 (* chained transfers *)
let trace_build_cost_per_ins = 15

let classify (insn : Guest.Arch.insn) ~addr ~len : ins_info =
  let reads, writes, msz =
    match insn with
    | Ld (w, _, _, _) -> (true, false, (match w with W1 -> 1 | W2 -> 2 | W4 -> 4))
    | St (w, _, _) -> (false, true, (match w with W1 -> 1 | W2 -> 2 | W4 -> 4))
    | Pop _ | Ret -> (true, false, 4)
    | Push _ | Pushi _ | Call _ | Calli _ -> (false, true, 4)
    | Fld _ -> (true, false, 8)
    | Fst _ -> (false, true, 8)
    | Vld _ -> (true, false, 16)
    | Vst _ -> (false, true, 16)
    | _ -> (false, false, 0)
  in
  let is_branch =
    match insn with
    | Jcc _ | Jmp _ | Jmpi _ | Call _ | Calli _ | Ret -> true
    | _ -> false
  in
  let is_fp =
    match insn with
    | Fld _ | Fst _ | Fmovr _ | Fldi _ | Falu _ | Fun1 _ | Fcmp _ | Fitod _
    | Fdtoi _ ->
        true
    | _ -> false
  in
  let is_simd =
    match insn with
    | Vld _ | Vst _ | Vmovr _ | Valu _ | Vsplat _ | Vextr _ -> true
    | _ -> false
  in
  let sets_flags =
    match insn with
    | Alu _ | Alui _ | Cmp _ | Cmpi _ | Test _ | Inc _ | Dec _ | Neg _
    | Fcmp _ ->
        true
    | _ -> false
  in
  {
    ii_addr = addr;
    ii_len = len;
    ii_insn = insn;
    ii_reads_mem = reads;
    ii_writes_mem = writes;
    ii_mem_size = msz;
    ii_is_branch = is_branch;
    ii_is_fp = is_fp;
    ii_is_simd = is_simd;
    ii_sets_flags = sets_flags;
  }

(* effective address of the access an instruction will make, given the
   current register file (computed pre-execution, like an address
   annotation callback would see) *)
let access_addr (st : Guest.Interp.state) (insn : Guest.Arch.insn) : int64 =
  let ea (m : mem) = Guest.Interp.ea st m in
  match insn with
  | Ld (_, _, _, m) | St (_, m, _) | Fld (_, m) | Fst (m, _) | Vld (_, m)
  | Vst (m, _) ->
      ea m
  | Push _ | Pushi _ | Call _ | Calli _ ->
      Support.Bits.trunc32 (Int64.sub st.regs.(reg_sp) 4L)
  | Pop _ | Ret -> st.regs.(reg_sp)
  | _ -> 0L

type engine = {
  native : Native.t;
  tool : tool;
  mutable analysis_cycles : int64;
  mutable overhead_cycles : int64;
  mutable traces_built : int;
  (* per-address cache of (info, analyses, flags_live_here) *)
  icache : (int64, ins_info * analysis list * bool) Hashtbl.t;
}

let create (image : Guest.Image.t) (tool : tool) : engine =
  if tool.t_wants_shadow_v128 then
    raise
      (Unsupported
         (tool.t_name
        ^ ": this framework has no 128-bit virtual registers (cannot fully \
           shadow SIMD state)"));
  {
    native = Native.create image;
    tool;
    analysis_cycles = 0L;
    overhead_cycles = 0L;
    traces_built = 0;
    icache = Hashtbl.create 4096;
  }

(** Run to completion; behaves exactly like {!Native.run} plus analysis. *)
let run ?(max_insns = 0L) (e : engine) : Native.exit_reason =
  let charge c = e.analysis_cycles <- Int64.add e.analysis_cycles (Int64.of_int c) in
  let kern = e.native.kern in
  ignore kern;
  (* piggy-back on the native engine: we step it manually so analysis can
     run before each instruction *)
  let t = e.native in
  Kernel.set_stdin t.kern "";
  t.kern.now_cycles <-
    (fun () ->
      Int64.add (Native.total_cycles t)
        (Int64.add e.analysis_cycles e.overhead_cycles));
  let entry, sp, brk, _ = Guest.Image.load t.image t.mem in
  Kernel.set_brk_base t.kern brk;
  let main = t.current in
  main.st.regs.(reg_sp) <- sp;
  main.st.regs.(reg_fp) <- sp;
  main.st.eip <- entry;
  let handlers = Native.handlers_for t in
  while t.exit_reason = None do
    if
      max_insns > 0L
      && Int64.unsigned_compare (Native.total_insns t) max_insns > 0
    then t.exit_reason <- Some Native.Out_of_fuel
    else begin
      let th = t.current in
      let st = th.Native.st in
      let pc = st.eip in
      let info, analyses, flags_live =
        match Hashtbl.find_opt e.icache pc with
        | Some x -> x
        | None ->
            let insn, len = Guest.Decode.decode (Aspace.fetch_u8 t.mem) pc in
            let info = classify insn ~addr:pc ~len in
            let analyses = e.tool.t_instrument info in
            List.iter
              (fun a ->
                if a.an_inline && (info.ii_is_fp || info.ii_is_simd) then
                  raise
                    (Unsupported
                       "inline analysis code cannot use FP/SIMD operations \
                        (write it as a C call)"))
              analyses;
            (* flags-liveness approximation: analysis inserted at an
               instruction inside a flags-live region pays save/restore;
               we approximate "flags live" as: this or the previous
               instruction sets flags (a branch usually follows) *)
            let flags_live = info.ii_sets_flags || info.ii_is_branch in
            e.traces_built <- e.traces_built + 1;
            e.overhead_cycles <-
              Int64.add e.overhead_cycles (Int64.of_int trace_build_cost_per_ins);
            let x = (info, analyses, flags_live) in
            Hashtbl.replace e.icache pc x;
            x
      in
      (* run the attached analysis *)
      if analyses <> [] then begin
        let cx =
          {
            cx_regs = st.regs;
            cx_addr =
              (if info.ii_reads_mem || info.ii_writes_mem then
                 access_addr st info.ii_insn
               else 0L);
            cx_pc = pc;
          }
        in
        List.iter
          (fun a ->
            a.an_fn cx;
            if a.an_inline then
              charge (a.an_cost + if flags_live then flag_save_cost else 0)
            else charge (call_overhead + a.an_cost))
          analyses
      end;
      (* copied-through original instruction at (near) native cost *)
      (match Guest.Interp.step th.Native.cache handlers with
      | () -> ()
      | exception Aspace.Fault _ -> Native.deliver_signal t th Kernel.Sig.sigsegv
      | exception Guest.Interp.Sigill _ ->
          Native.deliver_signal t th Kernel.Sig.sigill
      | exception Guest.Interp.Sigfpe _ ->
          Native.deliver_signal t th Kernel.Sig.sigfpe);
      if info.ii_is_branch then
        e.overhead_cycles <-
          Int64.add e.overhead_cycles (Int64.of_int trace_dispatch_cost)
    end
  done;
  (match e.tool.t_fini with Some f -> f () | None -> ());
  Option.value t.exit_reason ~default:(Native.Exited 0)

(** Total simulated cycles (client + analysis + framework overhead). *)
let total_cycles (e : engine) : int64 =
  Int64.add (Native.total_cycles e.native)
    (Int64.add e.analysis_cycles e.overhead_cycles)

(* ------------------------------------------------------------------ *)
(* Ready-made comparison tools (§5.4)                                   *)
(* ------------------------------------------------------------------ *)

(** No instrumentation: the C&A "Nulgrind". *)
let tool_none : tool =
  { t_name = "caa-none"; t_instrument = (fun _ -> []); t_wants_shadow_v128 = false;
    t_fini = None }

(** Basic-block / instruction counting with inline code (the lightweight
    tool the paper says Pin/DynamoRIO win at). *)
let tool_icount () : tool * int64 ref =
  let counter = ref 0L in
  ( {
      t_name = "caa-icount";
      t_instrument =
        (fun _info ->
          [ { an_fn = (fun _ -> counter := Int64.add !counter 1L);
              an_inline = true; an_cost = 3 } ]);
      t_wants_shadow_v128 = false;
      t_fini = None;
    },
    counter )

(** The 30-line memory tracer (paper §5.1's Pin-vs-Valgrind tool-writing
    comparison; contrast with {!Tools.Lackey}). *)
let tool_memtrace () : tool * int64 ref * int64 ref =
  let loads = ref 0L and stores = ref 0L in
  ( {
      t_name = "caa-memtrace";
      t_instrument =
        (fun info ->
          if info.ii_reads_mem then
            [ { an_fn = (fun _cx -> loads := Int64.add !loads 1L);
                an_inline = true; an_cost = 3 } ]
          else if info.ii_writes_mem then
            [ { an_fn = (fun _cx -> stores := Int64.add !stores 1L);
                an_inline = true; an_cost = 3 } ]
          else []);
      t_wants_shadow_v128 = false;
      t_fini = None;
    },
    loads,
    stores )

(** Byte-level taint tracking on C&A, TaintTrace/LIFT style: integer-only
    (FP/SIMD unhandled — the §5.4 limitation), shadow memory as a flat
    table, analysis as helper calls around memory ops and inline
    register-to-register propagation. *)
let tool_taint () : tool =
  let shadow = Hashtbl.create 4096 in
  let reg_taint = Array.make n_regs false in
  {
    t_name = "caa-taint";
    t_instrument =
      (fun info ->
        if info.ii_is_fp || info.ii_is_simd then
          (* TaintTrace and LIFT "do not handle programs that use FP or
             SIMD code" — we skip such instructions, silently losing
             taint, exactly the unsoundness the paper criticises *)
          []
        else
          match info.ii_insn with
          | Ld (_, _, d, _) ->
              [ { an_fn =
                    (fun cx ->
                      reg_taint.(d) <- Hashtbl.mem shadow cx.cx_addr);
                  an_inline = false; an_cost = 6 } ]
          | St (_, _, s) ->
              [ { an_fn =
                    (fun cx ->
                      if reg_taint.(s) then Hashtbl.replace shadow cx.cx_addr ()
                      else Hashtbl.remove shadow cx.cx_addr);
                  an_inline = false; an_cost = 6 } ]
          | Mov (d, s) ->
              [ { an_fn = (fun _ -> reg_taint.(d) <- reg_taint.(s));
                  an_inline = true; an_cost = 2 } ]
          | Movi (d, _) ->
              [ { an_fn = (fun _ -> reg_taint.(d) <- false);
                  an_inline = true; an_cost = 2 } ]
          | Alu (_, d, s) ->
              [ { an_fn = (fun _ -> reg_taint.(d) <- reg_taint.(d) || reg_taint.(s));
                  an_inline = true; an_cost = 3 } ]
          | Alui (_, _, _) | Inc _ | Dec _ | Neg _ | Not _ -> []
          | _ -> [])
      ;
    t_wants_shadow_v128 = false;
    t_fini = None;
  }

(** A Memcheck-class tool is not constructible: it needs full 128-bit
    shadow registers.  This value exists so tests can demonstrate the
    refusal (paper §5.3: "there are no 128-bit virtual registers, so
    128-bit SIMD registers cannot be fully shadowed, which would prevent
    some tools (e.g. Memcheck) from working fully"). *)
let tool_memcheck_like : tool =
  {
    t_name = "caa-memcheck";
    t_instrument = (fun _ -> []);
    t_wants_shadow_v128 = true;
    t_fini = None;
  }
