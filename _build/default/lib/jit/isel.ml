(** Phase 6 — Instruction selection: tree IR -> VH64 instructions over
    virtual registers.

    A simple, greedy, top-down tree-matching selector (paper §3.7 phase
    6).  Output instructions use virtual register numbers (dense ints,
    one space per register class); helper calls stay abstract as
    {!VCall} pseudo-instructions until register allocation assigns
    argument registers and decides what lives across the call.

    Invariant: an integer virtual register holding a value of type
    I1/I8/I16/I32 is always zero-extended to 64 bits. *)

open Vex_ir.Ir
module H = Host.Arch

(** Instructions over virtual registers: either a host instruction whose
    register fields are virtual numbers, or an abstract helper call. *)
type vinsn =
  | V of H.insn
  | VCall of {
      callee : callee;
      args : int list;  (** integer virtual regs *)
      dst : int option;  (** integer virtual reg for the result *)
    }

type ctx = {
  blk : block;
  mutable code : vinsn list;  (** reversed *)
  mutable next_int : int;
  mutable next_vec : int;
  mutable next_label : int;
  tmp_map : (tmp, int) Hashtbl.t;  (** IR temp -> virtual reg (per class) *)
}

let emit c i = c.code <- V i :: c.code

let new_int c =
  let r = c.next_int in
  c.next_int <- r + 1;
  r

let new_vec c =
  let r = c.next_vec in
  c.next_vec <- r + 1;
  r

let new_label c =
  let l = c.next_label in
  c.next_label <- l + 1;
  l

let is_vec_ty = function V128 -> true | _ -> false

exception Unrepresentable of string

let alu_of_binop : binop -> (H.width * H.alu_op) option = function
  | Add32 -> Some (W32, Add)
  | Sub32 -> Some (W32, Sub)
  | Mul32 -> Some (W32, Mul)
  | MulHiS32 -> Some (W32, Mulhs)
  | DivS32 -> Some (W32, Divs)
  | DivU32 -> Some (W32, Divu)
  | And32 -> Some (W32, And)
  | Or32 -> Some (W32, Or)
  | Xor32 -> Some (W32, Xor)
  | Shl32 -> Some (W32, Shl)
  | Shr32 -> Some (W32, Shr)
  | Sar32 -> Some (W32, Sar)
  | CmpEQ32 -> Some (W32, CmpEq)
  | CmpNE32 -> Some (W32, CmpNe)
  | CmpLT32S -> Some (W32, CmpLts)
  | CmpLE32S -> Some (W32, CmpLes)
  | CmpLT32U -> Some (W32, CmpLtu)
  | CmpLE32U -> Some (W32, CmpLeu)
  | Add64 -> Some (W64, Add)
  | Sub64 -> Some (W64, Sub)
  | Mul64 -> Some (W64, Mul)
  | And64 -> Some (W64, And)
  | Or64 -> Some (W64, Or)
  | Xor64 -> Some (W64, Xor)
  | Shl64 -> Some (W64, Shl)
  | Shr64 -> Some (W64, Shr)
  | Sar64 -> Some (W64, Sar)
  | CmpEQ64 -> Some (W64, CmpEq)
  | CmpNE64 -> Some (W64, CmpNe)
  | _ -> None

let falu_of_binop : binop -> H.falu_op option = function
  | AddF64 -> Some FAdd
  | SubF64 -> Some FSub
  | MulF64 -> Some FMul
  | DivF64 -> Some FDiv
  | MinF64 -> Some FMin
  | MaxF64 -> Some FMax
  | CmpEQF64 -> Some FCmpEq
  | CmpLTF64 -> Some FCmpLt
  | CmpLEF64 -> Some FCmpLe
  | _ -> None

let valu_of_binop : binop -> H.valu_op option = function
  | AndV128 -> Some VAnd
  | OrV128 -> Some VOr
  | XorV128 -> Some VXor
  | Add32x4 -> Some VAdd32
  | Sub32x4 -> Some VSub32
  | CmpEQ32x4 -> Some VCmpEq32
  | Add8x16 -> Some VAdd8
  | Sub8x16 -> Some VSub8
  | _ -> None

let const_bits = function
  | CI1 b -> if b then 1L else 0L
  | CI8 v -> Int64.of_int (v land 0xFF)
  | CI16 v -> Int64.of_int (v land 0xFFFF)
  | CI32 v -> Support.Bits.trunc32 v
  | CI64 v -> v
  | CF64 f -> Support.Bits.bits_of_float f
  | CV128 _ -> invalid_arg "const_bits: V128"

(* An immediate usable in Alui: encoded as 32 bits, sign-extended at
   decode.  For W32 ops any 32-bit value round-trips (results are
   truncated); for W64 it must be in the signed 32-bit range. *)
let imm_fits w (v : int64) =
  match w with
  | H.W32 -> Int64.unsigned_compare v 0xFFFF_FFFFL <= 0
  | H.W64 -> Support.Bits.sext32 v = v

(* immediate value for encoding: W32 values pass through low 32 bits *)
let imm_enc (v : int64) = Support.Bits.trunc32 v

(** Select [e] into an integer virtual register. *)
let rec sel_int (c : ctx) (e : expr) : int =
  match e with
  | RdTmp t -> (
      match Hashtbl.find_opt c.tmp_map t with
      | Some r -> r
      | None -> raise (Unrepresentable (Fmt.str "use of undefined t%d" t)))
  | Const (CV128 _) -> raise (Unrepresentable "V128 const in int context")
  | Const k ->
      let r = new_int c in
      emit c (Movi (r, const_bits k));
      r
  | Get (off, ty) when not (is_vec_ty ty) ->
      let r = new_int c in
      let sz = size_of_ty ty in
      emit c (Ld (sz, false, r, H.gsp, off));
      r
  | Get _ -> raise (Unrepresentable "vector GET in int context")
  | Load (ty, a) when not (is_vec_ty ty) ->
      let ra = sel_int c a in
      let r = new_int c in
      emit c (Ld (size_of_ty ty, false, r, ra, 0));
      r
  | Load _ -> raise (Unrepresentable "vector load in int context")
  | Unop (op, a) -> sel_unop c op a
  | Binop (op, x, y) -> sel_binop c op x y
  | ITE (cond, t, f) ->
      let rf = sel_int c f in
      let rt = sel_int c t in
      let rc = sel_int c cond in
      let rd = new_int c in
      emit c (Mov (rd, rf));
      emit c (Cmov (rd, rc, rt));
      rd
  | CCall (callee, _ty, args) ->
      let ras = List.map (sel_int c) args in
      let rd = new_int c in
      c.code <- VCall { callee; args = ras; dst = Some rd } :: c.code;
      rd

and sel_unop c op a : int =
  let unary ?(w = H.W64) aop imm =
    let ra = sel_int c a in
    let rd = new_int c in
    emit c (Alui (w, aop, rd, ra, imm));
    rd
  in
  let via_fun1 f =
    let ra = sel_int c a in
    let rd = new_int c in
    emit c (Fun1 (f, rd, ra));
    rd
  in
  match op with
  | Not1 -> unary Xor 1L
  | Not32 -> unary ~w:W32 Xor 0xFFFF_FFFFL
  | Not64 -> unary Xor (-1L)
  | Neg32 ->
      let ra = sel_int c a in
      let rz = new_int c in
      emit c (Movi (rz, 0L));
      let rd = new_int c in
      emit c (Alu (W32, Sub, rd, rz, ra));
      rd
  | Neg64 ->
      let ra = sel_int c a in
      let rz = new_int c in
      emit c (Movi (rz, 0L));
      let rd = new_int c in
      emit c (Alu (W64, Sub, rd, rz, ra));
      rd
  | U1to32 | U8to32 | U16to32 | U32to64 ->
      sel_int c a (* already zero-extended by invariant *)
  | S8to32 ->
      let r1 = unary ~w:W32 Shl 24L in
      let rd = new_int c in
      emit c (Alui (W32, Sar, rd, r1, 24L));
      rd
  | S16to32 ->
      let r1 = unary ~w:W32 Shl 16L in
      let rd = new_int c in
      emit c (Alui (W32, Sar, rd, r1, 16L));
      rd
  | S32to64 ->
      let r1 = unary Shl 32L in
      let rd = new_int c in
      emit c (Alui (W64, Sar, rd, r1, 32L));
      rd
  | T64to32 -> unary ~w:W32 Or 0L
  | T32to8 -> unary And 0xFFL
  | T32to16 -> unary And 0xFFFFL
  | T32to1 -> unary And 1L
  | CmpNEZ8 | CmpNEZ32 | CmpNEZ64 -> unary CmpNe 0L
  | CmpwNEZ32 ->
      let r1 = unary CmpNe 0L in
      let rz = new_int c in
      emit c (Movi (rz, 0L));
      let rd = new_int c in
      emit c (Alu (W32, Sub, rd, rz, r1));
      rd
  | CmpwNEZ64 ->
      let r1 = unary CmpNe 0L in
      let rz = new_int c in
      emit c (Movi (rz, 0L));
      let rd = new_int c in
      emit c (Alu (W64, Sub, rd, rz, r1));
      rd
  | Left32 ->
      let ra = sel_int c a in
      let rz = new_int c in
      emit c (Movi (rz, 0L));
      let rn = new_int c in
      emit c (Alu (W32, Sub, rn, rz, ra));
      let rd = new_int c in
      emit c (Alu (W32, Or, rd, ra, rn));
      rd
  | Left64 ->
      let ra = sel_int c a in
      let rz = new_int c in
      emit c (Movi (rz, 0L));
      let rn = new_int c in
      emit c (Alu (W64, Sub, rn, rz, ra));
      let rd = new_int c in
      emit c (Alu (W64, Or, rd, ra, rn));
      rd
  | Clz32 -> via_fun1 Clz32
  | Ctz32 -> via_fun1 Ctz32
  | NegF64 -> via_fun1 FNeg
  | AbsF64 -> via_fun1 FAbs
  | SqrtF64 -> via_fun1 FSqrt
  | I32StoF64 -> via_fun1 I32StoF64
  | F64toI32S -> via_fun1 F64toI32S
  | ReinterpF64asI64 | ReinterpI64asF64 -> sel_int c a (* same bits *)
  | V128to64 ->
      let va = sel_vec c a in
      let rd = new_int c in
      emit c (Vunpack (rd, va, 0));
      rd
  | V128HIto64 ->
      let va = sel_vec c a in
      let rd = new_int c in
      emit c (Vunpack (rd, va, 1));
      rd
  | NotV128 | Dup32x4 | CmpNEZ32x4 ->
      raise (Unrepresentable "vector unop in int context")

and sel_binop c op x y : int =
  match alu_of_binop op with
  | Some (w, aop) -> (
      let commutable = match aop with
        | H.Add | H.And | H.Or | H.Xor | H.Mul | H.CmpEq | H.CmpNe -> true
        | _ -> false
      in
      match (x, y) with
      | _, Const k when k <> CV128 0 && imm_fits w (const_bits k) ->
          let rx = sel_int c x in
          let rd = new_int c in
          emit c (Alui (w, aop, rd, rx, imm_enc (const_bits k)));
          rd
      | Const k, _ when commutable && k <> CV128 0 && imm_fits w (const_bits k)
        ->
          let ry = sel_int c y in
          let rd = new_int c in
          emit c (Alui (w, aop, rd, ry, imm_enc (const_bits k)));
          rd
      | _ ->
          let rx = sel_int c x in
          let ry = sel_int c y in
          let rd = new_int c in
          emit c (Alu (w, aop, rd, rx, ry));
          rd)
  | None -> (
      match falu_of_binop op with
      | Some fop ->
          let rx = sel_int c x in
          let ry = sel_int c y in
          let rd = new_int c in
          emit c (Falu (fop, rd, rx, ry));
          rd
      | None -> (
          match op with
          | Cat32x2 ->
              (* (hi, lo) -> hi:lo *)
              let rx = sel_int c x in
              let ry = sel_int c y in
              let rs = new_int c in
              emit c (Alui (W64, Shl, rs, rx, 32L));
              let rd = new_int c in
              emit c (Alu (W64, Or, rd, rs, ry));
              rd
          | _ -> raise (Unrepresentable "vector binop in int context")))

(** Select [e] into a vector virtual register. *)
and sel_vec (c : ctx) (e : expr) : int =
  match e with
  | RdTmp t -> (
      match Hashtbl.find_opt c.tmp_map t with
      | Some r -> r
      | None -> raise (Unrepresentable (Fmt.str "use of undefined t%d" t)))
  | Const (CV128 p) ->
      let v = Support.V128.of_pattern16 p in
      let rlo = new_int c in
      emit c (Movi (rlo, Support.V128.lo v));
      let rhi = new_int c in
      emit c (Movi (rhi, Support.V128.hi v));
      let vd = new_vec c in
      emit c (Vpack (vd, rhi, rlo));
      vd
  | Const _ -> raise (Unrepresentable "scalar const in vec context")
  | Get (off, V128) ->
      let vd = new_vec c in
      emit c (Vld (vd, H.gsp, off));
      vd
  | Get _ -> raise (Unrepresentable "scalar GET in vec context")
  | Load (V128, a) ->
      let ra = sel_int c a in
      let vd = new_vec c in
      emit c (Vld (vd, ra, 0));
      vd
  | Load _ -> raise (Unrepresentable "scalar load in vec context")
  | Unop (NotV128, a) ->
      let va = sel_vec c a in
      let vd = new_vec c in
      emit c (Vnot (vd, va));
      vd
  | Unop (Dup32x4, a) ->
      let ra = sel_int c a in
      let vd = new_vec c in
      emit c (Vsplat32 (vd, ra));
      vd
  | Unop (CmpNEZ32x4, a) ->
      let va = sel_vec c a in
      let rz = new_int c in
      emit c (Movi (rz, 0L));
      let vz = new_vec c in
      emit c (Vpack (vz, rz, rz));
      let veq = new_vec c in
      emit c (Valu (VCmpEq32, veq, va, vz));
      let vd = new_vec c in
      emit c (Vnot (vd, veq));
      vd
  | Unop _ -> raise (Unrepresentable "scalar unop in vec context")
  | Binop (Cat64x2, hi, lo) ->
      let rhi = sel_int c hi in
      let rlo = sel_int c lo in
      let vd = new_vec c in
      emit c (Vpack (vd, rhi, rlo));
      vd
  | Binop (op, x, y) -> (
      match valu_of_binop op with
      | Some vop ->
          let vx = sel_vec c x in
          let vy = sel_vec c y in
          let vd = new_vec c in
          emit c (Valu (vop, vd, vx, vy));
          vd
      | None -> raise (Unrepresentable "scalar binop in vec context"))
  | ITE (cond, t, f) ->
      (* no vector cmov: select via two masked halves is overkill; use a
         branch *)
      let vf = sel_vec c f in
      let vd = new_vec c in
      emit c (Vmov (vd, vf));
      let rc = sel_int c cond in
      let l = new_label c in
      emit c (Jz (rc, l));
      let vt = sel_vec c t in
      emit c (Vmov (vd, vt));
      emit c (Label l);
      vd
  | CCall _ -> raise (Unrepresentable "CCall cannot return V128")

(** Select a whole (tree-built) block.  Returns the code, the int and vec
    virtual-register counts, and the label count. *)
let select (b : block) : vinsn list * int * int * int =
  (* Virtual register numbers start above the physical register space so
     that the GSP (h15), which appears as a literal base register in
     GET/PUT selections, can never collide with a virtual number. *)
  let c =
    {
      blk = b;
      code = [];
      next_int = Host.Arch.n_hregs;
      next_vec = Host.Arch.n_hvregs;
      next_label = 0;
      tmp_map = Hashtbl.create 64;
    }
  in
  let sel_any ty e = if is_vec_ty ty then sel_vec c e else sel_int c e in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp | IMark _ | AbiHint _ -> ()
      | WrTmp (t, e) ->
          let ty = tmp_ty b t in
          let r = sel_any ty e in
          Hashtbl.replace c.tmp_map t r
      | Put (off, e) ->
          let ty = type_of b e in
          if is_vec_ty ty then begin
            let v = sel_vec c e in
            emit c (Vst (v, H.gsp, off))
          end
          else begin
            let r = sel_int c e in
            emit c (St (size_of_ty ty, r, H.gsp, off))
          end
      | Store (a, d) ->
          let ty = type_of b d in
          if is_vec_ty ty then begin
            let ra = sel_int c a in
            let v = sel_vec c d in
            emit c (Vst (v, ra, 0))
          end
          else begin
            let ra = sel_int c a in
            let r = sel_int c d in
            emit c (St (size_of_ty ty, r, ra, 0))
          end
      | Dirty d -> (
          let guarded =
            match d.d_guard with Const (CI1 true) -> None | g -> Some g
          in
          let skip =
            match guarded with
            | None -> None
            | Some g ->
                let rg = sel_int c g in
                let l = new_label c in
                emit c (Jz (rg, l));
                Some l
          in
          let ras = List.map (sel_int c) d.d_args in
          let dst = Option.map (fun _ -> new_int c) d.d_tmp in
          c.code <- VCall { callee = d.d_callee; args = ras; dst } :: c.code;
          (match (d.d_tmp, dst) with
          | Some t, Some r -> Hashtbl.replace c.tmp_map t r
          | _ -> ());
          match skip with Some l -> emit c (Label l) | None -> ())
      | Exit (g, jk, dest) ->
          let rg = sel_int c g in
          emit c (ExitIf (rg, H.ek_of_jumpkind jk, dest)))
    b.stmts;
  (match b.next with
  | Const (CI32 dest) ->
      emit c (GotoI (H.ek_of_jumpkind b.jumpkind, Support.Bits.trunc32 dest))
  | e ->
      let r = sel_int c e in
      emit c (Goto (H.ek_of_jumpkind b.jumpkind, r)));
  (List.rev c.code, c.next_int, c.next_vec, c.next_label)
