lib/jit/ghelpers.ml: Arch Array Flags Guest Int64 Interp Vex_ir
