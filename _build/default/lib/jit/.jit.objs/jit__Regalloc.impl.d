lib/jit/regalloc.ml: Array Fun Host Isel List Option
