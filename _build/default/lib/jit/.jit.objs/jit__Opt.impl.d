lib/jit/opt.ml: Array Guest Hashtbl Int Int64 List Map Option Support Vex_ir
