lib/jit/treebuild.ml: Array List Support Vex_ir
