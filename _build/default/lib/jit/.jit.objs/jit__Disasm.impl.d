lib/jit/disasm.ml: Aspace Fun Ghelpers Guest Int64 List Option Support Vex_ir
