lib/jit/pipeline.ml: Aspace Bytes Disasm Fun Host Int64 Isel List Opt Regalloc Support Treebuild Vex_ir
