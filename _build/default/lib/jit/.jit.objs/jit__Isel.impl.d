lib/jit/isel.ml: Fmt Hashtbl Host Int64 List Option Support Vex_ir
