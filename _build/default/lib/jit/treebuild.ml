(** Phase 5 — Tree building: flat IR -> tree IR.

    Expressions assigned to temporaries used exactly once are substituted
    into the use point and the assignment deleted, so the instruction
    selector sees whole trees to match against (paper §3.7 phase 5).  The
    resulting code may perform loads in a different order to the original
    code, but loads are never moved past stores; expressions reading
    guest state are never moved past writes of that state, and nothing is
    moved past a dirty call or a side exit. *)

open Vex_ir.Ir

(* What a pending (not yet emitted) definition's expression touches. *)
type effects = { reads_mem : bool; reads_state : (int * int) list }

let rec effects_of (b : block) (e : expr) : effects =
  match e with
  | RdTmp _ | Const _ -> { reads_mem = false; reads_state = [] }
  | Get (off, ty) -> { reads_mem = false; reads_state = [ (off, size_of_ty ty) ] }
  | Load (_, a) ->
      let ea = effects_of b a in
      { ea with reads_mem = true }
  | Unop (_, a) -> effects_of b a
  | Binop (_, x, y) ->
      let ex = effects_of b x and ey = effects_of b y in
      { reads_mem = ex.reads_mem || ey.reads_mem;
        reads_state = ex.reads_state @ ey.reads_state }
  | ITE (c, t, f) ->
      let l = List.map (effects_of b) [ c; t; f ] in
      { reads_mem = List.exists (fun e -> e.reads_mem) l;
        reads_state = List.concat_map (fun e -> e.reads_state) l }
  | CCall (_, _, args) ->
      let l = List.map (effects_of b) args in
      { reads_mem = List.exists (fun e -> e.reads_mem) l;
        reads_state = List.concat_map (fun e -> e.reads_state) l }

let overlaps (o1, s1) (o2, s2) = o1 < o2 + s2 && o2 < o1 + s1

(** Count uses of each temporary (in statements and [next]). *)
let count_uses (b : block) : int array =
  let uses = Array.make (Support.Vec.length b.tyenv) 0 in
  let rec go = function
    | RdTmp t -> uses.(t) <- uses.(t) + 1
    | Get _ | Const _ -> ()
    | Load (_, a) -> go a
    | Unop (_, a) -> go a
    | Binop (_, x, y) ->
        go x;
        go y
    | ITE (c, t, f) ->
        go c;
        go t;
        go f
    | CCall (_, _, args) -> List.iter go args
  in
  Support.Vec.iter
    (fun s ->
      match s with
      | Put (_, e) | WrTmp (_, e) | AbiHint (e, _) -> go e
      | Store (a, d) ->
          go a;
          go d
      | Exit (g, _, _) -> go g
      | Dirty d ->
          go d.d_guard;
          List.iter go d.d_args;
          (match d.d_mfx with
          | Mfx_none -> ()
          | Mfx_read (e, _) | Mfx_write (e, _) -> go e)
      | NoOp | IMark _ -> ())
    b.stmts;
  go b.next;
  uses

let build (b : block) : block =
  let uses = count_uses b in
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  (* pending single-use definitions, oldest first *)
  let pending : (tmp * expr * effects) list ref = ref [] in
  let flush_if cond =
    let emit, keep = List.partition (fun (_, _, fx) -> cond fx) !pending in
    List.iter (fun (t, e, _) -> add_stmt nb (WrTmp (t, e))) emit;
    pending := keep
  in
  let flush_all () = flush_if (fun _ -> true) in
  (* substitute pending defs into e (removing them from pending) *)
  let rec subst (e : expr) : expr =
    match e with
    | RdTmp t -> (
        match List.find_opt (fun (t', _, _) -> t' = t) !pending with
        | Some (_, def, _) ->
            pending := List.filter (fun (t', _, _) -> t' <> t) !pending;
            def
        | None -> e)
    | Get _ | Const _ -> e
    | Load (ty, a) -> Load (ty, subst a)
    | Unop (op, a) -> Unop (op, subst a)
    | Binop (op, x, y) ->
        (* substitute right-to-left so that evaluation order (left first)
           keeps earlier defs earlier *)
        let y' = subst y in
        let x' = subst x in
        Binop (op, x', y')
    | ITE (c, t, f) ->
        let f' = subst f in
        let t' = subst t in
        let c' = subst c in
        ITE (c', t', f')
    | CCall (callee, ty, args) ->
        let args' = List.rev_map subst (List.rev args) in
        CCall (callee, ty, args')
  in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp -> ()
      | IMark _ -> add_stmt nb s
      | WrTmp (t, e) ->
          let e' = subst e in
          if uses.(t) = 1 then
            pending := !pending @ [ (t, e', effects_of nb e') ]
          else add_stmt nb (WrTmp (t, e'))
      | Put (off, e) ->
          let e' = subst e in
          (* defs reading this state range must be emitted first *)
          flush_if (fun fx ->
              List.exists (fun r -> overlaps r (off, size_of_ty (type_of nb e'))) fx.reads_state);
          add_stmt nb (Put (off, e'))
      | Store (a, d) ->
          let d' = subst d in
          let a' = subst a in
          (* loads never move past stores *)
          flush_if (fun fx -> fx.reads_mem);
          add_stmt nb (Store (a', d'))
      | AbiHint (e, l) -> add_stmt nb (AbiHint (subst e, l))
      | Exit (g, jk, dest) ->
          let g' = subst g in
          flush_all ();
          add_stmt nb (Exit (g', jk, dest))
      | Dirty d ->
          let args' = List.rev_map subst (List.rev d.d_args) in
          let guard' = subst d.d_guard in
          flush_all ();
          add_stmt nb
            (Dirty
               {
                 d with
                 d_guard = guard';
                 d_args = args';
                 d_mfx =
                   (match d.d_mfx with
                   | Mfx_none -> Mfx_none
                   | Mfx_read (e, n) -> Mfx_read (subst e, n)
                   | Mfx_write (e, n) -> Mfx_write (subst e, n));
               }))
    b.stmts;
  nb.next <- subst b.next;
  (* anything left pending is referenced only by emitted statements that
     already consumed it — or genuinely unused; drop unused defs *)
  pending := [];
  nb
