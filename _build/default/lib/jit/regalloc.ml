(** Phase 7 — Register allocation: virtual registers -> host registers.

    A linear-scan allocator in the style of Traub et al. [26] (the paper's
    reference for Valgrind's allocator).  Because superblocks contain only
    forward internal branches, a virtual register's live interval is just
    [first position, last position] of its mentions, and a single linear
    sweep suffices.

    Intervals that are live across a helper [VCall] may not occupy
    caller-saved registers (the call clobbers h0..h7/hv0..hv3); they are
    given callee-saved registers or spilled to the per-thread spill zone
    addressed off the GSP.  Spilled values are reloaded through the
    reserved scratch registers (h13/h14, hv7).

    The allocator also coalesces register-to-register moves whose source
    and destination end up in the same host register (the effect shown in
    the paper's Figure 3). *)

open Isel
module H = Host.Arch

type cls = Int | Vec

(* ------------------------------------------------------------------ *)
(* Uses and defs of a vinsn, per class                                  *)
(* ------------------------------------------------------------------ *)

(* (reads, writes) of virtual registers for each class *)
let refs (i : vinsn) : (int list * int list) * (int list * int list) =
  let ii r w = ((r, w), ([], [])) in
  let vv r w = (([], []), (r, w)) in
  let mixed ir iw vr vw = ((ir, iw), (vr, vw)) in
  match i with
  | V (Movi (d, _)) -> ii [] [ d ]
  | V (Mov (d, s)) -> ii [ s ] [ d ]
  | V (Alu (_, _, d, s1, s2)) -> ii [ s1; s2 ] [ d ]
  | V (Alui (_, _, d, s1, _)) -> ii [ s1 ] [ d ]
  | V (Ld (_, _, d, b, _)) ->
      if b = H.gsp then ii [] [ d ] else ii [ b ] [ d ]
  | V (St (_, s, b, _)) -> if b = H.gsp then ii [ s ] [] else ii [ s; b ] []
  | V (Cmov (d, c, s)) -> ii [ c; s; d ] [ d ]
  | V (Falu (_, d, s1, s2)) -> ii [ s1; s2 ] [ d ]
  | V (Fun1 (_, d, s)) -> ii [ s ] [ d ]
  | V (Vld (d, b, _)) ->
      if b = H.gsp then vv [] [ d ] else mixed [ b ] [] [] [ d ]
  | V (Vst (s, b, _)) ->
      if b = H.gsp then vv [ s ] [] else mixed [ b ] [] [ s ] []
  | V (Vmov (d, s)) -> vv [ s ] [ d ]
  | V (Valu (_, d, s1, s2)) -> vv [ s1; s2 ] [ d ]
  | V (Vnot (d, s)) -> vv [ s ] [ d ]
  | V (Vsplat32 (d, s)) -> mixed [ s ] [] [] [ d ]
  | V (Vpack (d, hi, lo)) -> mixed [ hi; lo ] [] [] [ d ]
  | V (Vunpack (d, s, _)) -> mixed [] [ d ] [ s ] []
  | V (Call _) -> ii [] [] (* physical calls appear only after allocation *)
  | V (Jz (c, _)) | V (Jnz (c, _)) -> ii [ c ] []
  | V (Jmp _) | V (Label _) -> ii [] []
  | V (ExitIf (c, _, _)) -> ii [ c ] []
  | V (Goto (_, s)) -> ii [ s ] []
  | V (GotoI _) -> ii [] []
  | VCall { args; dst; _ } -> ii args (Option.to_list dst)

(* ------------------------------------------------------------------ *)
(* Live intervals                                                       *)
(* ------------------------------------------------------------------ *)

type interval = {
  vreg : int;
  cls : cls;
  start : int;
  stop : int;
  crosses_call : bool;
}

let intervals (code : vinsn list) ~(n_int : int) ~(n_vec : int) :
    interval list =
  let first_i = Array.make n_int max_int and last_i = Array.make n_int (-1) in
  let first_v = Array.make n_vec max_int and last_v = Array.make n_vec (-1) in
  let call_positions = ref [] in
  List.iteri
    (fun pos i ->
      (match i with VCall _ -> call_positions := pos :: !call_positions | _ -> ());
      let (ir, iw), (vr, vw) = refs i in
      let touch first last r =
        if pos < first.(r) then first.(r) <- pos;
        if pos > last.(r) then last.(r) <- pos
      in
      List.iter (touch first_i last_i) (ir @ iw);
      List.iter (touch first_v last_v) (vr @ vw))
    code;
  let calls = !call_positions in
  let mk cls first last n =
    List.init n (fun r ->
        if last.(r) < 0 then None
        else
          Some
            {
              vreg = r;
              cls;
              start = first.(r);
              stop = last.(r);
              crosses_call =
                List.exists (fun p -> p > first.(r) && p < last.(r)) calls;
            })
    |> List.filter_map Fun.id
  in
  mk Int first_i last_i n_int @ mk Vec first_v last_v n_vec

(* ------------------------------------------------------------------ *)
(* Allocation                                                           *)
(* ------------------------------------------------------------------ *)

(** Where a virtual register lives after allocation. *)
type loc = Phys of int | Spill of int (* slot index *)

type assignment = {
  int_loc : loc array;
  vec_loc : loc array;
  n_spill_int : int;
  n_spill_vec : int;
}

exception Out_of_spill_slots

let allocate (code : vinsn list) ~(n_int : int) ~(n_vec : int) : assignment =
  let ivs =
    intervals code ~n_int ~n_vec
    |> List.sort (fun a b -> compare (a.start, a.stop) (b.start, b.stop))
  in
  let int_loc = Array.make n_int (Spill (-1)) in
  let vec_loc = Array.make n_vec (Spill (-1)) in
  let spill_int = ref 0 and spill_vec = ref 0 in
  (* free registers per class *)
  let free_int = Array.make (List.length H.allocatable_int) true in
  let free_vec = Array.make (List.length H.allocatable_vec) true in
  let active : interval list ref = ref [] in
  let release iv =
    match (iv.cls, if iv.cls = Int then int_loc.(iv.vreg) else vec_loc.(iv.vreg)) with
    | Int, Phys p -> free_int.(p) <- true
    | Vec, Phys p -> free_vec.(p) <- true
    | _ -> ()
  in
  let next_spill cls =
    match cls with
    | Int ->
        let s = !spill_int in
        incr spill_int;
        if s >= H.spill_slots_int then raise Out_of_spill_slots;
        Spill s
    | Vec ->
        let s = !spill_vec in
        incr spill_vec;
        if s >= H.spill_slots_vec then raise Out_of_spill_slots;
        Spill s
  in
  List.iter
    (fun iv ->
      (* expire old intervals *)
      let expired, still = List.partition (fun a -> a.stop < iv.start) !active in
      List.iter release expired;
      active := still;
      let free, caller_saved =
        match iv.cls with
        | Int -> (free_int, H.caller_saved_int)
        | Vec -> (free_vec, H.caller_saved_vec)
      in
      let candidates =
        (* prefer callee-saved for call-crossing intervals; call-crossing
           intervals must not take caller-saved at all *)
        let all = Array.to_list (Array.mapi (fun i f -> (i, f)) free) in
        let avail = List.filter snd all |> List.map fst in
        if iv.crosses_call then
          List.filter (fun r -> not (List.mem r caller_saved)) avail
        else
          (* prefer caller-saved to keep callee-saved available *)
          List.filter (fun r -> List.mem r caller_saved) avail
          @ List.filter (fun r -> not (List.mem r caller_saved)) avail
      in
      let loc =
        match candidates with
        | r :: _ ->
            free.(r) <- false;
            active := iv :: !active;
            Phys r
        | [] -> next_spill iv.cls
      in
      match iv.cls with
      | Int -> int_loc.(iv.vreg) <- loc
      | Vec -> vec_loc.(iv.vreg) <- loc)
    ivs;
  { int_loc; vec_loc; n_spill_int = !spill_int; n_spill_vec = !spill_vec }

(* ------------------------------------------------------------------ *)
(* Rewriting: apply assignment, expand spills and calls                 *)
(* ------------------------------------------------------------------ *)

let int_slot_off s = H.spill_base_int + (8 * s)
let vec_slot_off s = H.spill_base_vec + (16 * s)

(** Rewrite [code] into pure host instructions with physical registers.
    Returns the final instruction list (labels still symbolic; phase 8
    assembles them).  [next_label] supplies fresh labels for local
    expansions. *)
let apply (code : vinsn list) (asg : assignment) ~(next_label : int ref) :
    H.insn list =
  let out = ref [] in
  let emit i = out := i :: !out in
  let fresh_label () =
    let l = !next_label in
    incr next_label;
    l
  in
  (* read an int virtual into a physical register, using scratch if
     spilled; [which] distinguishes the two scratches *)
  let read_int ?(which = 0) v =
    match asg.int_loc.(v) with
    | Phys p -> p
    | Spill s ->
        let scratch = if which = 0 then H.scratch else H.scratch2 in
        emit (H.Ld (8, false, scratch, H.gsp, int_slot_off s));
        scratch
  in
  let read_vec ?(which = 0) v =
    match asg.vec_loc.(v) with
    | Phys p -> p
    | Spill s ->
        let scratch = if which = 0 then H.vscratch else H.vscratch2 in
        emit (H.Vld (scratch, H.gsp, vec_slot_off s));
        scratch
  in
  (* destination: physical register to compute into + flush action *)
  let write_int v =
    match asg.int_loc.(v) with
    | Phys p -> (p, fun () -> ())
    | Spill s ->
        (H.scratch, fun () -> emit (H.St (8, H.scratch, H.gsp, int_slot_off s)))
  in
  let write_vec v =
    match asg.vec_loc.(v) with
    | Phys p -> (p, fun () -> ())
    | Spill s ->
        (H.vscratch, fun () -> emit (H.Vst (H.vscratch, H.gsp, vec_slot_off s)))
  in
  let mov_int d s = if d <> s then emit (H.Mov (d, s)) in
  List.iter
    (fun vi ->
      match vi with
      | V (Movi (d, imm)) ->
          let pd, fl = write_int d in
          emit (H.Movi (pd, imm));
          fl ()
      | V (Mov (d, s)) ->
          let ps = read_int s in
          let pd, fl = write_int d in
          mov_int pd ps;
          fl ()
      | V (Alu (w, op, d, s1, s2)) ->
          let p1 = read_int ~which:0 s1 in
          let p2 = read_int ~which:1 s2 in
          let pd, fl = write_int d in
          emit (H.Alu (w, op, pd, p1, p2));
          fl ()
      | V (Alui (w, op, d, s1, imm)) ->
          let p1 = read_int s1 in
          let pd, fl = write_int d in
          emit (H.Alui (w, op, pd, p1, imm));
          fl ()
      | V (Ld (sz, sx, d, b, off)) ->
          let pb = if b = H.gsp then H.gsp else read_int b in
          let pd, fl = write_int d in
          emit (H.Ld (sz, sx, pd, pb, off));
          fl ()
      | V (St (sz, s, b, off)) ->
          let ps = read_int ~which:0 s in
          let pb = if b = H.gsp then H.gsp else read_int ~which:1 b in
          emit (H.St (sz, ps, pb, off))
      | V (Cmov (d, cnd, s)) -> (
          (* d is read-modify-write *)
          match asg.int_loc.(d) with
          | Phys pd ->
              let pc = read_int ~which:0 cnd in
              let ps = read_int ~which:1 s in
              emit (H.Cmov (pd, pc, ps))
          | Spill slot ->
              (* all three operands may be spilled; expand to a branch so
                 that only one scratch is live at a time *)
              let pc = read_int ~which:1 cnd in
              let l = fresh_label () in
              emit (H.Jz (pc, l));
              let ps = read_int ~which:0 s in
              emit (H.St (8, ps, H.gsp, int_slot_off slot));
              emit (H.Label l))
      | V (Falu (op, d, s1, s2)) ->
          let p1 = read_int ~which:0 s1 in
          let p2 = read_int ~which:1 s2 in
          let pd, fl = write_int d in
          emit (H.Falu (op, pd, p1, p2));
          fl ()
      | V (Fun1 (op, d, s)) ->
          let ps = read_int s in
          let pd, fl = write_int d in
          emit (H.Fun1 (op, pd, ps));
          fl ()
      | V (Vld (d, b, off)) ->
          let pb = if b = H.gsp then H.gsp else read_int b in
          let pd, fl = write_vec d in
          emit (H.Vld (pd, pb, off));
          fl ()
      | V (Vst (s, b, off)) ->
          let ps = read_vec s in
          let pb = if b = H.gsp then H.gsp else read_int b in
          emit (H.Vst (ps, pb, off))
      | V (Vmov (d, s)) ->
          let ps = read_vec s in
          let pd, fl = write_vec d in
          if pd <> ps then emit (H.Vmov (pd, ps));
          fl ()
      | V (Valu (op, d, s1, s2)) ->
          let p1 = read_vec ~which:0 s1 in
          let p2 = read_vec ~which:1 s2 in
          let pd, fl = write_vec d in
          (* the interpreter reads both sources before writing, so pd may
             alias p1 (both the scratch) safely *)
          emit (H.Valu (op, pd, p1, p2));
          fl ()
      | V (Vnot (d, s)) ->
          let ps = read_vec s in
          let pd, fl = write_vec d in
          emit (H.Vnot (pd, ps));
          fl ()
      | V (Vsplat32 (d, s)) ->
          let ps = read_int s in
          let pd, fl = write_vec d in
          emit (H.Vsplat32 (pd, ps));
          fl ()
      | V (Vpack (d, hi, lo)) ->
          let phi = read_int ~which:0 hi in
          let plo = read_int ~which:1 lo in
          let pd, fl = write_vec d in
          emit (H.Vpack (pd, phi, plo));
          fl ()
      | V (Vunpack (d, s, half)) ->
          let ps = read_vec s in
          let pd, fl = write_int d in
          emit (H.Vunpack (pd, ps, half));
          fl ()
      | V (Call _) -> invalid_arg "Regalloc.apply: raw Call in input"
      | V (Jz (cnd, l)) ->
          let pc = read_int cnd in
          emit (H.Jz (pc, l))
      | V (Jnz (cnd, l)) ->
          let pc = read_int cnd in
          emit (H.Jnz (pc, l))
      | V (Jmp l) -> emit (H.Jmp l)
      | V (Label l) -> emit (H.Label l)
      | V (ExitIf (cnd, ek, dest)) ->
          let pc = read_int cnd in
          emit (H.ExitIf (pc, ek, dest))
      | V (Goto (ek, s)) ->
          let ps = read_int s in
          emit (H.Goto (ek, ps))
      | V (GotoI (ek, dest)) -> emit (H.GotoI (ek, dest))
      | VCall { callee; args; dst } ->
          (* parallel-move the arguments into h0..h(n-1) *)
          let n = List.length args in
          if n > List.length H.arg_regs then
            invalid_arg "too many helper arguments";
          let moves =
            List.mapi (fun i a -> (i, asg.int_loc.(a))) args
            |> List.filter (fun (i, src) -> src <> Phys i)
          in
          (* iterative parallel move; use scratch to break cycles *)
          let pending = ref moves in
          let progress = ref true in
          while !pending <> [] && !progress do
            progress := false;
            let ready, blocked =
              List.partition
                (fun (dst, _) ->
                  not
                    (List.exists
                       (fun (d2, src2) ->
                         d2 <> dst && src2 = Phys dst)
                       !pending))
                !pending
            in
            if ready <> [] then begin
              progress := true;
              List.iter
                (fun (d, src) ->
                  match src with
                  | Phys p -> mov_int d p
                  | Spill s -> emit (H.Ld (8, false, d, H.gsp, int_slot_off s)))
                ready;
              pending := blocked
            end
            else begin
              (* cycle: rotate through scratch *)
              match !pending with
              | (d, Phys p) :: rest ->
                  emit (H.Mov (H.scratch, p));
                  (* anything that wanted p now reads scratch *)
                  pending :=
                    (d, Phys H.scratch)
                    :: List.map
                         (fun (d2, s2) ->
                           if s2 = Phys p then (d2, Phys H.scratch) else (d2, s2))
                         rest;
                  progress := true
              | _ -> assert false
            end
          done;
          emit (H.Call (callee.c_id, n, callee.c_cost));
          (match dst with
          | None -> ()
          | Some d -> (
              match asg.int_loc.(d) with
              | Phys p -> mov_int p H.ret_reg
              | Spill s -> emit (H.St (8, H.ret_reg, H.gsp, int_slot_off s)))))
    code;
  List.rev !out

(** Run allocation and rewriting in one step. *)
let run (code : vinsn list) ~(n_int : int) ~(n_vec : int)
    ~(next_label : int ref) : H.insn list =
  apply code (allocate code ~n_int ~n_vec) ~next_label
