(** The complete eight-phase translation pipeline (paper §3.7).

    {v
    1. Disassembly*         machine code   -> tree IR     (core)
    2. Optimisation 1       tree IR        -> flat IR     (core)
    3. Instrumentation      flat IR        -> flat IR     (tool)
    4. Optimisation 2       flat IR        -> flat IR     (core)
    5. Tree building        flat IR        -> tree IR     (core)
    6. Instruction selection* tree IR      -> vreg insns  (core)
    7. Register allocation  vreg insns     -> host insns  (core)
    8. Assembly*            host insns     -> machine code(core)
    v}

    Phases marked * are architecture-specific.  The instrumentation
    callback is supplied by the tool plug-in (via the core); everything
    else is the core's. *)

type instrument = Vex_ir.Ir.block -> Vex_ir.Ir.block

(** A finished translation. *)
type translation = {
  t_guest_addr : int64;  (** guest address this was translated from *)
  t_code : Bytes.t;  (** assembled host machine code *)
  t_decoded : Host.Arch.insn array;  (** decoded-once cache of [t_code] *)
  t_guest_insns : int;  (** guest instructions covered *)
  t_guest_bytes : int;  (** guest bytes covered *)
  t_guest_ranges : (int64 * int) list;  (** covered [addr,len) ranges *)
  t_smc_check : bool;  (** prepend a self-hash check when executing *)
  t_code_hash : int64;  (** hash of the original guest bytes (for SMC) *)
  t_ir_stmts_pre : int;  (** flat statements before instrumentation *)
  t_ir_stmts_post : int;  (** after instrumentation + opt2 *)
}

(** Cycle cost charged for making one translation (the JIT itself runs on
    the host CPU; D&R "will probably translate code more slowly" — this
    surfaces in total cycle counts for short runs). *)
let translation_cost (t : translation) = 60 * t.t_ir_stmts_post

(* FNV-1a over the guest bytes a translation was made from.  Unfetchable
   bytes (a block ending in undecodable unmapped memory) hash as zero. *)
let hash_guest_bytes (fetch : int64 -> int) (ranges : (int64 * int) list) :
    int64 =
  let h = ref 0xCBF29CE484222325L in
  List.iter
    (fun (addr, len) ->
      for i = 0 to len - 1 do
        let b =
          try fetch (Int64.add addr (Int64.of_int i)) with Aspace.Fault _ -> 0
        in
        h := Int64.mul (Int64.logxor !h (Int64.of_int b)) 0x100000001B3L
      done)
    ranges;
  !h

(** Extract the guest address ranges covered by a block's IMarks. *)
let imark_ranges (b : Vex_ir.Ir.block) : (int64 * int) list =
  let ranges = ref [] in
  Support.Vec.iter
    (fun s ->
      match s with
      | Vex_ir.Ir.IMark (a, l) -> ranges := (a, l) :: !ranges
      | _ -> ())
    b.stmts;
  List.rev !ranges

exception Translation_failure of string

(** Intermediate results of each phase, for inspection/printing (the
    bench harness regenerates the paper's Figures 1–3 from these). *)
type phases = {
  p_tree : Vex_ir.Ir.block;  (** after phase 1 *)
  p_flat : Vex_ir.Ir.block;  (** after phase 2 *)
  p_instrumented : Vex_ir.Ir.block;  (** after phase 3 *)
  p_opt2 : Vex_ir.Ir.block;  (** after phase 4 *)
  p_treebuilt : Vex_ir.Ir.block;  (** after phase 5 *)
  p_vcode : Isel.vinsn list;  (** after phase 6 *)
  p_hcode : Host.Arch.insn list;  (** after phase 7 *)
  p_bytes : Bytes.t;  (** after phase 8 *)
}

(** Run all eight phases, returning every intermediate result.
    [unroll] controls phase 2's self-loop unrolling. *)
let translate_phases ?(unroll = true) ~(fetch : int64 -> int)
    ~(instrument : instrument) (guest_addr : int64) : phases * translation =
  (* 1: disassembly *)
  let tree, stats = Disasm.superblock ~fetch guest_addr in
  (* 2: optimisation 1 *)
  let flat = Opt.opt1 ~unroll tree in
  let pre_stmts = Support.Vec.length flat.stmts in
  (try Vex_ir.Typecheck.check_flat flat
   with Vex_ir.Typecheck.Ill_typed m ->
     raise (Translation_failure ("phase 2 output ill-typed: " ^ m)));
  (* 3: instrumentation (tool) *)
  let instrumented = instrument (Vex_ir.Ir.copy_block flat) in
  (try Vex_ir.Typecheck.check_flat instrumented
   with Vex_ir.Typecheck.Ill_typed m ->
     raise (Translation_failure ("instrumented IR ill-typed: " ^ m)));
  (* 4: optimisation 2 *)
  let opt2 = Opt.opt2 instrumented in
  let post_stmts = Support.Vec.length opt2.stmts in
  (* 5: tree building *)
  let treebuilt = Treebuild.build opt2 in
  (* 6: instruction selection *)
  let vcode, n_int, n_vec, n_label =
    try Isel.select treebuilt
    with Isel.Unrepresentable m ->
      raise (Translation_failure ("instruction selection failed: " ^ m))
  in
  (* 7: register allocation *)
  let next_label = ref n_label in
  let hcode = Regalloc.run vcode ~n_int ~n_vec ~next_label in
  (* 8: assembly *)
  let bytes = Host.Encode.assemble hcode in
  let ranges = imark_ranges tree in
  let t =
    {
      t_guest_addr = guest_addr;
      t_code = bytes;
      t_decoded = Host.Encode.decode bytes;
      t_guest_insns = stats.guest_insns;
      t_guest_bytes = stats.guest_bytes;
      t_guest_ranges = ranges;
      t_smc_check = false;
      t_code_hash = hash_guest_bytes fetch ranges;
      t_ir_stmts_pre = pre_stmts;
      t_ir_stmts_post = post_stmts;
    }
  in
  ( {
      p_tree = tree;
      p_flat = flat;
      p_instrumented = instrumented;
      p_opt2 = opt2;
      p_treebuilt = treebuilt;
      p_vcode = vcode;
      p_hcode = hcode;
      p_bytes = bytes;
    },
    t )

(** Run all eight phases, returning just the translation. *)
let translate ?(unroll = true) ~fetch ~instrument guest_addr : translation =
  snd (translate_phases ~unroll ~fetch ~instrument guest_addr)

(** The identity instrumentation (what Nulgrind passes). *)
let no_instrument : instrument = Fun.id
