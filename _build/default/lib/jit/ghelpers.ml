(** Guest helper functions referenced by generated IR.

    These are the analogues of VEX's [x86g_calculate_condition] /
    [x86g_calculate_eflags_all] and of the dirty helpers that emulate
    unrepresentable instructions ([cpuid] on x86; [sysinfo] here).  They
    are registered once in the global helper table; their semantics are
    shared with the guest reference interpreter through {!Guest.Flags}
    and {!Guest.Interp.sysinfo_result}, which is what keeps native and
    translated execution bit-identical. *)

open Guest

(** [calculate_condition(cond, cc_op, dep1, dep2, ndep)] -> 0/1 (I32). *)
let calculate_condition : Vex_ir.Ir.callee =
  Vex_ir.Helpers.register ~name:"vg32_calculate_condition" ~cost:6
    (fun _env args ->
      Flags.calculate_condition
        ~cond:(Int64.to_int args.(0))
        ~op:args.(1) ~dep1:args.(2) ~dep2:args.(3) ~ndep:args.(4))

(** [calculate_eflags(cc_op, dep1, dep2, ndep)] -> 4-bit flags word. *)
let calculate_eflags : Vex_ir.Ir.callee =
  Vex_ir.Helpers.register ~name:"vg32_calculate_eflags" ~cost:5
    (fun _env args ->
      Flags.calculate ~op:args.(0) ~dep1:args.(1) ~dep2:args.(2) ~ndep:args.(3))

(** Dirty helper emulating the [sysinfo] instruction.  Reads guest r0,
    writes r0 and r1 — visible to tools via the fx annotations, exactly
    the mechanism §3.6 describes for [cpuid]. *)
let sysinfo : Vex_ir.Ir.callee =
  Vex_ir.Helpers.register ~name:"vg32_dirtyhelper_sysinfo" ~cost:10
    ~fx_reads:[ (Arch.off_reg 0, 4) ]
    ~fx_writes:[ (Arch.off_reg 0, 4); (Arch.off_reg 1, 4) ]
    (fun env _args ->
      let leaf = env.he_get_guest (Arch.off_reg 0) 4 in
      let r0, r1 = Interp.sysinfo_result leaf in
      env.he_put_guest (Arch.off_reg 0) 4 r0;
      env.he_put_guest (Arch.off_reg 1) 4 r1;
      0L)
