(** The VH64 host architecture.

    VH64 is the synthetic host CPU the JIT targets (DESIGN.md §1): a
    64-bit register machine with sixteen integer registers, eight 128-bit
    vector registers, and byte-encoded instructions executed by
    {!Interp}.  FP arithmetic operates on IEEE754 bit patterns held in
    integer registers (soft-float style), so the register allocator only
    manages two classes.

    Conventions (fixed by the JIT, honoured by the interpreter):
    - [h15] is the GSP: it always points at the running thread's
      ThreadState (the paper: "one general-purpose host register is
      always reserved to point to the ThreadState");
    - [h14] is an emitter scratch register, never allocated;
    - helper calls pass arguments in [h0..h5] and return in [h0], and
      clobber the caller-saved set [h0..h7] and [hv0..hv3]. *)

type hreg = int (* h0..h15 *)
type hvreg = int (* hv0..hv7 *)

let n_hregs = 16
let n_hvregs = 8
let gsp = 15 (* ThreadState pointer *)
let scratch = 14

(** Second integer scratch, used when an instruction has two spilled
    integer sources. *)
let scratch2 = 13

(** Vector scratches. *)
let vscratch = 7

let vscratch2 = 6

(** Integer registers available to the allocator: h0..h12. *)
let allocatable_int = List.init 13 Fun.id

(** Vector registers available to the allocator: hv0..hv5. *)
let allocatable_vec = List.init 6 Fun.id

let caller_saved_int = List.init 8 Fun.id (* h0..h7: clobbered by Call *)
let caller_saved_vec = List.init 4 Fun.id (* hv0..hv3 *)
let callee_saved_int = [ 8; 9; 10; 11; 12 ]
let callee_saved_vec = [ 4; 5 ]
let arg_regs = [ 0; 1; 2; 3; 4; 5 ]
let ret_reg = 0

(** Spill zone: slots inside the ThreadState beyond the guest+shadow
    area, addressed off the GSP (Valgrind likewise spills to a dedicated
    per-thread area rather than a host stack). *)
let spill_base_int = 640

let spill_slots_int = 192
let spill_base_vec = spill_base_int + (8 * spill_slots_int) (* 1152 *)
let spill_slots_vec = 48
let threadstate_size = spill_base_vec + (16 * spill_slots_vec) (* 1536 *)

type width = W32 | W64

type alu_op =
  | Add | Sub | And | Or | Xor | Shl | Shr | Sar | Mul | Mulhs | Divs | Divu
  | CmpEq | CmpNe | CmpLts | CmpLes | CmpLtu | CmpLeu

type falu_op = FAdd | FSub | FMul | FDiv | FMin | FMax | FCmpEq | FCmpLt | FCmpLe
type fun1_op = FSqrt | FNeg | FAbs | I32StoF64 | F64toI32S | Clz32 | Ctz32
type valu_op = VAnd | VOr | VXor | VAdd32 | VSub32 | VCmpEq32 | VAdd8 | VSub8

(** Exit kind returned to the dispatcher (mirrors {!Vex_ir.Ir.jumpkind}).
    Encoded as a small integer in exit instructions. *)
type exit_kind = int

let ek_boring = 0
let ek_call = 1
let ek_ret = 2
let ek_syscall = 3
let ek_clientreq = 4
let ek_yield = 5
let ek_sigill = 6
let ek_smc = 7 (* translation self-check failed: retranslate *)

let ek_of_jumpkind : Vex_ir.Ir.jumpkind -> exit_kind = function
  | Vex_ir.Ir.Jk_boring -> ek_boring
  | Jk_call -> ek_call
  | Jk_ret -> ek_ret
  | Jk_syscall -> ek_syscall
  | Jk_clientreq -> ek_clientreq
  | Jk_yield -> ek_yield
  | Jk_sigill -> ek_sigill

type label = int

type insn =
  | Movi of hreg * int64
  | Mov of hreg * hreg
  | Alu of width * alu_op * hreg * hreg * hreg  (** rd := rs1 op rs2 *)
  | Alui of width * alu_op * hreg * hreg * int64
      (** rd := rs1 op imm (imm sign-extended from 32 bits) *)
  | Ld of int * bool * hreg * hreg * int
      (** size(1/2/4/8), sign-extend?, rd, base, disp *)
  | St of int * hreg * hreg * int  (** size, rs, base, disp *)
  | Cmov of hreg * hreg * hreg  (** if rc<>0 then rd := rs *)
  | Falu of falu_op * hreg * hreg * hreg  (** F64 bits in integer regs *)
  | Fun1 of fun1_op * hreg * hreg
  | Vld of hvreg * hreg * int
  | Vst of hvreg * hreg * int
  | Vmov of hvreg * hvreg
  | Valu of valu_op * hvreg * hvreg * hvreg
  | Vnot of hvreg * hvreg
  | Vsplat32 of hvreg * hreg
  | Vpack of hvreg * hreg * hreg  (** vd := hi:lo *)
  | Vunpack of hreg * hvreg * int  (** rd := half (0 = lo, 1 = hi) *)
  | Call of int * int * int  (** helper id, nargs, declared cost *)
  | Jz of hreg * label
  | Jnz of hreg * label
  | Jmp of label
  | Label of label  (** pseudo-instruction; encodes to nothing *)
  | ExitIf of hreg * exit_kind * int64
      (** if rc<>0: leave translated code, next guest PC = const *)
  | Goto of exit_kind * hreg  (** leave; next guest PC in register *)
  | GotoI of exit_kind * int64

let hreg_name r = Printf.sprintf "%%h%d" r
let hvreg_name r = Printf.sprintf "%%hv%d" r

let alu_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar" | Mul -> "mul" | Mulhs -> "mulhs"
  | Divs -> "divs" | Divu -> "divu" | CmpEq -> "cmpeq" | CmpNe -> "cmpne"
  | CmpLts -> "cmplts" | CmpLes -> "cmples" | CmpLtu -> "cmpltu" | CmpLeu -> "cmpleu"

let falu_name = function
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"
  | FMin -> "fmin" | FMax -> "fmax" | FCmpEq -> "fcmpeq" | FCmpLt -> "fcmplt"
  | FCmpLe -> "fcmple"

let fun1_name = function
  | FSqrt -> "fsqrt" | FNeg -> "fneg" | FAbs -> "fabs"
  | I32StoF64 -> "i32stof64" | F64toI32S -> "f64toi32s"
  | Clz32 -> "clz32" | Ctz32 -> "ctz32"

let valu_name = function
  | VAnd -> "vand" | VOr -> "vor" | VXor -> "vxor" | VAdd32 -> "vadd32"
  | VSub32 -> "vsub32" | VCmpEq32 -> "vcmpeq32" | VAdd8 -> "vadd8"
  | VSub8 -> "vsub8"

let width_suffix = function W32 -> "l" | W64 -> "q"

let pp_insn ppf (i : insn) =
  let r = hreg_name and v = hvreg_name in
  match i with
  | Movi (d, imm) -> Fmt.pf ppf "movq $0x%LX, %s" imm (r d)
  | Mov (d, s) -> Fmt.pf ppf "movq %s, %s" (r s) (r d)
  | Alu (w, op, d, s1, s2) ->
      Fmt.pf ppf "%s%s %s, %s, %s" (alu_name op) (width_suffix w) (r s1) (r s2) (r d)
  | Alui (w, op, d, s1, imm) ->
      Fmt.pf ppf "%s%s %s, $0x%LX, %s" (alu_name op) (width_suffix w) (r s1) imm (r d)
  | Ld (sz, sx, d, b, disp) ->
      Fmt.pf ppf "ld%d%s %d(%s), %s" sz (if sx then "s" else "u") disp (r b) (r d)
  | St (sz, s, b, disp) -> Fmt.pf ppf "st%d %s, %d(%s)" sz (r s) disp (r b)
  | Cmov (d, c, s) -> Fmt.pf ppf "cmovnz %s, %s, %s" (r c) (r s) (r d)
  | Falu (op, d, s1, s2) ->
      Fmt.pf ppf "%s %s, %s, %s" (falu_name op) (r s1) (r s2) (r d)
  | Fun1 (op, d, s) -> Fmt.pf ppf "%s %s, %s" (fun1_name op) (r s) (r d)
  | Vld (d, b, disp) -> Fmt.pf ppf "vld %d(%s), %s" disp (r b) (v d)
  | Vst (s, b, disp) -> Fmt.pf ppf "vst %s, %d(%s)" (v s) disp (r b)
  | Vmov (d, s) -> Fmt.pf ppf "vmov %s, %s" (v s) (v d)
  | Valu (op, d, s1, s2) ->
      Fmt.pf ppf "%s %s, %s, %s" (valu_name op) (v s1) (v s2) (v d)
  | Vnot (d, s) -> Fmt.pf ppf "vnot %s, %s" (v s) (v d)
  | Vsplat32 (d, s) -> Fmt.pf ppf "vsplat32 %s, %s" (r s) (v d)
  | Vpack (d, hi, lo) -> Fmt.pf ppf "vpack %s:%s, %s" (r hi) (r lo) (v d)
  | Vunpack (d, s, half) -> Fmt.pf ppf "vunpack %s[%d], %s" (v s) half (r d)
  | Call (id, nargs, _) ->
      Fmt.pf ppf "call %s/%d" (Vex_ir.Helpers.name id) nargs
  | Jz (c, l) -> Fmt.pf ppf "jz %s, .L%d" (r c) l
  | Jnz (c, l) -> Fmt.pf ppf "jnz %s, .L%d" (r c) l
  | Jmp l -> Fmt.pf ppf "jmp .L%d" l
  | Label l -> Fmt.pf ppf ".L%d:" l
  | ExitIf (c, ek, dest) -> Fmt.pf ppf "exitif %s, ek%d, 0x%LX" (r c) ek dest
  | Goto (ek, s) -> Fmt.pf ppf "goto ek%d, %s" ek (r s)
  | GotoI (ek, dest) -> Fmt.pf ppf "goto ek%d, 0x%LX" ek dest

(** Cycle cost of one instruction under the host model (the analogue of
    the native model in {!Guest.Interp.cost}; both are simple in-order
    approximations so that Table-2 ratios are meaningful). *)
let cost = function
  | Movi _ | Mov _ -> 1
  | Alu (_, (Mul | Mulhs), _, _, _) | Alui (_, (Mul | Mulhs), _, _, _) -> 3
  | Alu (_, (Divs | Divu), _, _, _) | Alui (_, (Divs | Divu), _, _, _) -> 20
  | Alu _ | Alui _ -> 1
  | Ld _ | St _ | Vld _ | Vst _ -> 2
  | Cmov _ -> 1
  | Falu (FDiv, _, _, _) -> 16
  | Fun1 (FSqrt, _, _) -> 16
  | Falu _ | Fun1 _ -> 3
  | Vmov _ | Valu _ | Vnot _ | Vsplat32 _ | Vpack _ | Vunpack _ -> 1
  | Call (_, _, c) -> 10 + c (* fixed call/save-restore overhead + body *)
  | Jz _ | Jnz _ | Jmp _ -> 1
  | Label _ -> 0
  | ExitIf _ -> 1
  | Goto _ | GotoI _ -> 1
