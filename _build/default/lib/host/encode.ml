(** VH64 encoder/decoder.

    Phase 8 of the JIT assembles the register-allocated instruction list
    into this byte encoding and writes it into the translation's code
    block.  The executor ({!Interp}) decodes the bytes back once per
    translation and caches the decoded form — playing the role of a
    hardware instruction cache, and keeping the stored translation a real
    byte artefact (the translation table hands out byte blocks, evicts
    them in chunks, and so on, as §3.8 describes). *)

open Arch
open Support

let alu_index = function
  | Add -> 0 | Sub -> 1 | And -> 2 | Or -> 3 | Xor -> 4 | Shl -> 5 | Shr -> 6
  | Sar -> 7 | Mul -> 8 | Mulhs -> 9 | Divs -> 10 | Divu -> 11 | CmpEq -> 12
  | CmpNe -> 13 | CmpLts -> 14 | CmpLes -> 15 | CmpLtu -> 16 | CmpLeu -> 17

let alu_of_index = function
  | 0 -> Add | 1 -> Sub | 2 -> And | 3 -> Or | 4 -> Xor | 5 -> Shl | 6 -> Shr
  | 7 -> Sar | 8 -> Mul | 9 -> Mulhs | 10 -> Divs | 11 -> Divu | 12 -> CmpEq
  | 13 -> CmpNe | 14 -> CmpLts | 15 -> CmpLes | 16 -> CmpLtu | 17 -> CmpLeu
  | n -> invalid_arg (Printf.sprintf "alu_of_index %d" n)

let falu_index = function
  | FAdd -> 0 | FSub -> 1 | FMul -> 2 | FDiv -> 3 | FMin -> 4 | FMax -> 5
  | FCmpEq -> 6 | FCmpLt -> 7 | FCmpLe -> 8

let falu_of_index = function
  | 0 -> FAdd | 1 -> FSub | 2 -> FMul | 3 -> FDiv | 4 -> FMin | 5 -> FMax
  | 6 -> FCmpEq | 7 -> FCmpLt | 8 -> FCmpLe
  | n -> invalid_arg (Printf.sprintf "falu_of_index %d" n)

let fun1_index = function
  | FSqrt -> 0 | FNeg -> 1 | FAbs -> 2 | I32StoF64 -> 3 | F64toI32S -> 4
  | Clz32 -> 5 | Ctz32 -> 6

let fun1_of_index = function
  | 0 -> FSqrt | 1 -> FNeg | 2 -> FAbs | 3 -> I32StoF64 | 4 -> F64toI32S
  | 5 -> Clz32 | 6 -> Ctz32
  | n -> invalid_arg (Printf.sprintf "fun1_of_index %d" n)

let valu_index = function
  | VAnd -> 0 | VOr -> 1 | VXor -> 2 | VAdd32 -> 3 | VSub32 -> 4
  | VCmpEq32 -> 5 | VAdd8 -> 6 | VSub8 -> 7

let valu_of_index = function
  | 0 -> VAnd | 1 -> VOr | 2 -> VXor | 3 -> VAdd32 | 4 -> VSub32
  | 5 -> VCmpEq32 | 6 -> VAdd8 | 7 -> VSub8
  | n -> invalid_arg (Printf.sprintf "valu_of_index %d" n)

let sz_code = function 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> invalid_arg "sz"
let sz_of_code = function 0 -> 1 | 1 -> 2 | 2 -> 4 | _ -> 8

(* Encoded length of each instruction (Label = 0). *)
let enc_length = function
  | Movi _ -> 10
  | Mov _ -> 2
  | Alu _ -> 4
  | Alui _ -> 8
  | Ld _ -> 7
  | St _ -> 7
  | Cmov _ -> 3
  | Falu _ -> 4
  | Fun1 _ -> 3
  | Vld _ | Vst _ -> 6
  | Vmov _ -> 2
  | Valu _ -> 4
  | Vnot _ | Vsplat32 _ -> 2
  | Vpack _ -> 3
  | Vunpack _ -> 3
  | Call _ -> 6
  | Jz _ | Jnz _ -> 6
  | Jmp _ -> 5
  | Label _ -> 0
  | ExitIf _ -> 7
  | Goto _ -> 3
  | GotoI _ -> 6

(** Assemble an instruction list (labels resolved to byte offsets) into
    machine-code bytes. *)
let assemble (insns : insn list) : Bytes.t =
  (* pass 1: label -> byte offset *)
  let label_off = Hashtbl.create 16 in
  let off = ref 0 in
  List.iter
    (fun i ->
      (match i with Label l -> Hashtbl.replace label_off l !off | _ -> ());
      off := !off + enc_length i)
    insns;
  let target l =
    match Hashtbl.find_opt label_off l with
    | Some o -> Int64.of_int o
    | None -> invalid_arg (Printf.sprintf "assemble: undefined label %d" l)
  in
  let b = Buf.create ~capacity:(!off + 8) () in
  List.iter
    (fun i ->
      match i with
      | Movi (d, imm) ->
          Buf.u8 b 0x01;
          Buf.u8 b d;
          Buf.u64 b imm
      | Mov (d, s) ->
          Buf.u8 b 0x02;
          Buf.u8 b ((d lsl 4) lor s)
      | Alu (w, op, d, s1, s2) ->
          Buf.u8 b (match w with W32 -> 0x03 | W64 -> 0x04);
          Buf.u8 b (alu_index op);
          Buf.u8 b ((d lsl 4) lor s1);
          Buf.u8 b s2
      | Alui (w, op, d, s1, imm) ->
          Buf.u8 b (match w with W32 -> 0x05 | W64 -> 0x06);
          Buf.u8 b (alu_index op);
          Buf.u8 b ((d lsl 4) lor s1);
          Buf.u32 b imm;
          Buf.u8 b 0
      | Ld (sz, sx, d, base, disp) ->
          Buf.u8 b 0x07;
          Buf.u8 b (sz_code sz lor if sx then 0x10 else 0);
          Buf.u8 b ((d lsl 4) lor base);
          Buf.u32 b (Int64.of_int disp)
      | St (sz, s, base, disp) ->
          Buf.u8 b 0x08;
          Buf.u8 b (sz_code sz);
          Buf.u8 b ((s lsl 4) lor base);
          Buf.u32 b (Int64.of_int disp)
      | Cmov (d, c, s) ->
          Buf.u8 b 0x09;
          Buf.u8 b ((d lsl 4) lor c);
          Buf.u8 b s
      | Falu (op, d, s1, s2) ->
          Buf.u8 b 0x0A;
          Buf.u8 b (falu_index op);
          Buf.u8 b ((d lsl 4) lor s1);
          Buf.u8 b s2
      | Fun1 (op, d, s) ->
          Buf.u8 b 0x0B;
          Buf.u8 b (fun1_index op);
          Buf.u8 b ((d lsl 4) lor s)
      | Vld (d, base, disp) ->
          Buf.u8 b 0x0C;
          Buf.u8 b ((d lsl 4) lor base);
          Buf.u32 b (Int64.of_int disp)
      | Vst (s, base, disp) ->
          Buf.u8 b 0x0D;
          Buf.u8 b ((s lsl 4) lor base);
          Buf.u32 b (Int64.of_int disp)
      | Vmov (d, s) ->
          Buf.u8 b 0x0E;
          Buf.u8 b ((d lsl 4) lor s)
      | Valu (op, d, s1, s2) ->
          Buf.u8 b 0x0F;
          Buf.u8 b (valu_index op);
          Buf.u8 b ((d lsl 4) lor s1);
          Buf.u8 b s2
      | Vnot (d, s) ->
          Buf.u8 b 0x10;
          Buf.u8 b ((d lsl 4) lor s)
      | Vsplat32 (d, s) ->
          Buf.u8 b 0x11;
          Buf.u8 b ((d lsl 4) lor s)
      | Vpack (d, hi, lo) ->
          Buf.u8 b 0x12;
          Buf.u8 b d;
          Buf.u8 b ((hi lsl 4) lor lo)
      | Vunpack (d, s, half) ->
          Buf.u8 b 0x13;
          Buf.u8 b ((d lsl 4) lor s);
          Buf.u8 b half
      | Call (id, nargs, cost) ->
          Buf.u8 b 0x14;
          Buf.u16 b id;
          Buf.u8 b nargs;
          Buf.u16 b cost
      | Jz (c, l) ->
          Buf.u8 b 0x15;
          Buf.u8 b c;
          Buf.u32 b (target l)
      | Jnz (c, l) ->
          Buf.u8 b 0x16;
          Buf.u8 b c;
          Buf.u32 b (target l)
      | Jmp l ->
          Buf.u8 b 0x17;
          Buf.u32 b (target l)
      | Label _ -> ()
      | ExitIf (c, ek, dest) ->
          Buf.u8 b 0x18;
          Buf.u8 b c;
          Buf.u8 b ek;
          Buf.u32 b dest
      | Goto (ek, s) ->
          Buf.u8 b 0x19;
          Buf.u8 b ek;
          Buf.u8 b s
      | GotoI (ek, dest) ->
          Buf.u8 b 0x1A;
          Buf.u8 b ek;
          Buf.u32 b dest)
    insns;
  Buf.contents b

exception Decode_error of int

(** Decode a translation back into an instruction array; branch targets
    are rewritten from byte offsets to instruction indices (so [Jz]'s
    label field is an index after decoding). *)
let decode (code : Bytes.t) : insn array =
  let out = ref [] in
  let byte_to_idx = Hashtbl.create 64 in
  let pos = ref 0 in
  let idx = ref 0 in
  let len = Bytes.length code in
  while !pos < len do
    Hashtbl.replace byte_to_idx !pos !idx;
    let op = Buf.read_u8 code !pos in
    let at = !pos + 1 in
    let u8 o = Buf.read_u8 code (at + o) in
    let u16 o = Buf.read_u16 code (at + o) in
    let u32 o = Buf.read_u32 code (at + o) in
    let u64 o = Buf.read_u64 code (at + o) in
    let hi o = u8 o lsr 4 and lo o = u8 o land 0xF in
    let i, sz =
      match op with
      | 0x01 -> (Movi (u8 0, u64 1), 10)
      | 0x02 -> (Mov (hi 0, lo 0), 2)
      | 0x03 -> (Alu (W32, alu_of_index (u8 0), hi 1, lo 1, u8 2), 4)
      | 0x04 -> (Alu (W64, alu_of_index (u8 0), hi 1, lo 1, u8 2), 4)
      | 0x05 -> (Alui (W32, alu_of_index (u8 0), hi 1, lo 1, Bits.sext32 (u32 2)), 8)
      | 0x06 -> (Alui (W64, alu_of_index (u8 0), hi 1, lo 1, Bits.sext32 (u32 2)), 8)
      | 0x07 ->
          let m = u8 0 in
          (Ld (sz_of_code (m land 3), m land 0x10 <> 0, hi 1, lo 1,
               Int64.to_int (Bits.sext32 (u32 2))), 7)
      | 0x08 ->
          (St (sz_of_code (u8 0 land 3), hi 1, lo 1,
               Int64.to_int (Bits.sext32 (u32 2))), 7)
      | 0x09 -> (Cmov (hi 0, lo 0, u8 1), 3)
      | 0x0A -> (Falu (falu_of_index (u8 0), hi 1, lo 1, u8 2), 4)
      | 0x0B -> (Fun1 (fun1_of_index (u8 0), hi 1, lo 1), 3)
      | 0x0C -> (Vld (hi 0, lo 0, Int64.to_int (Bits.sext32 (u32 1))), 6)
      | 0x0D -> (Vst (hi 0, lo 0, Int64.to_int (Bits.sext32 (u32 1))), 6)
      | 0x0E -> (Vmov (hi 0, lo 0), 2)
      | 0x0F -> (Valu (valu_of_index (u8 0), hi 1, lo 1, u8 2), 4)
      | 0x10 -> (Vnot (hi 0, lo 0), 2)
      | 0x11 -> (Vsplat32 (hi 0, lo 0), 2)
      | 0x12 -> (Vpack (u8 0, hi 1, lo 1), 3)
      | 0x13 -> (Vunpack (hi 0, lo 0, u8 1), 3)
      | 0x14 -> (Call (u16 0, u8 2, u16 3), 6)
      | 0x15 -> (Jz (u8 0, Int64.to_int (u32 1)), 6)
      | 0x16 -> (Jnz (u8 0, Int64.to_int (u32 1)), 6)
      | 0x17 -> (Jmp (Int64.to_int (u32 0)), 5)
      | 0x18 -> (ExitIf (u8 0, u8 1, u32 2), 7)
      | 0x19 -> (Goto (u8 0, u8 1), 3)
      | 0x1A -> (GotoI (u8 0, u32 1), 6)
      | _ -> raise (Decode_error !pos)
    in
    out := i :: !out;
    pos := !pos + sz;
    incr idx
  done;
  Hashtbl.replace byte_to_idx !pos !idx;
  let arr = Array.of_list (List.rev !out) in
  (* rewrite branch targets from byte offsets to indices *)
  Array.map
    (function
      | Jz (c, t) -> Jz (c, Hashtbl.find byte_to_idx t)
      | Jnz (c, t) -> Jnz (c, Hashtbl.find byte_to_idx t)
      | Jmp t -> Jmp (Hashtbl.find byte_to_idx t)
      | i -> i)
    arr
