lib/host/arch.ml: Fmt Fun List Printf Vex_ir
