lib/host/interp.ml: Arch Array Aspace Bits Float Int64 Support V128 Vex_ir
