lib/host/encode.ml: Arch Array Bits Buf Bytes Hashtbl Int64 List Printf Support
