(** The "native CPU" execution engine: runs a VG32 image directly on the
    reference interpreter with the simulated kernel — no instrumentation,
    no translation.  This is the baseline the Table-2 slow-down factors
    are computed against (its cycle counter plays the role of the
    paper's native execution times).

    It supports the same kernel interface as the Valgrind engine
    (threads, signals, the whole syscall set) so any test program runs
    identically under both. *)

module GA = Guest.Arch

type exit_reason = Exited of int | Fatal_signal of int | Out_of_fuel

type thread = {
  tid : int;
  st : Guest.Interp.state;
  cache : Guest.Interp.cached_interp;
  mutable status : [ `Runnable | `Exited ];
  mutable sig_frames : saved_state list;
}

and saved_state = {
  sv_regs : int64 array;
  sv_eip : int64;
  sv_cc : int64 * int64 * int64 * int64;
  sv_fregs : float array;
  sv_vregs : Support.V128.t array;
}

type t = {
  mem : Aspace.t;
  kern : Kernel.t;
  image : Guest.Image.t;
  mutable threads : thread list;
  mutable current : thread;
  mutable next_tid : int;
  mutable exit_reason : exit_reason option;
  mutable insns_between_switch : int;
  mutable sigreturn_tramp : int64;
  mutable thread_exit_tramp : int64;
  mutable tramp_next : int64;
}

let timeslice_insns = 500_000

let total_cycles (t : t) : int64 =
  List.fold_left (fun acc th -> Int64.add acc th.st.Guest.Interp.cycles) 0L t.threads

let total_insns (t : t) : int64 =
  List.fold_left
    (fun acc th -> Int64.add acc th.st.Guest.Interp.insns_retired)
    0L t.threads

let make_thread_in (mem : Aspace.t) ~tid : thread =
  let st = Guest.Interp.create mem in
  { tid; st; cache = Guest.Interp.with_cache st; status = `Runnable; sig_frames = [] }

let make_thread (t : t) ~tid : thread = make_thread_in t.mem ~tid

(* native trampolines live in an otherwise-unused corner of client space *)
let tramp_base = 0x0000_F000L

let write_tramp (t : t) insns : int64 =
  let buf = Support.Buf.create () in
  List.iter (Guest.Encode.emit buf) insns;
  let addr = t.tramp_next in
  let bytes = Support.Buf.contents buf in
  t.tramp_next <- Int64.add addr (Int64.of_int (Bytes.length bytes + 4));
  Aspace.write_bytes t.mem addr bytes;
  addr

let create (image : Guest.Image.t) : t =
  let mem = Aspace.create () in
  let kern = Kernel.create mem in
  let main = make_thread_in mem ~tid:1 in
  {
    mem;
    kern;
    image;
    threads = [ main ];
    current = main;
    next_tid = 2;
    exit_reason = None;
    insns_between_switch = 0;
    sigreturn_tramp = 0L;
    thread_exit_tramp = 0L;
    tramp_next = tramp_base;
  }

let regs_of (th : thread) : Kernel.regs =
  {
    get = (fun r -> th.st.regs.(r));
    set = (fun r v -> th.st.regs.(r) <- Support.Bits.trunc32 v);
  }

let save_frame (th : thread) =
  let st = th.st in
  th.sig_frames <-
    {
      sv_regs = Array.copy st.regs;
      sv_eip = st.eip;
      sv_cc = (st.cc_op, st.cc_dep1, st.cc_dep2, st.cc_ndep);
      sv_fregs = Array.copy st.fregs;
      sv_vregs = Array.copy st.vregs;
    }
    :: th.sig_frames

let restore_frame (th : thread) : bool =
  match th.sig_frames with
  | [] -> false
  | f :: rest ->
      let st = th.st in
      Array.blit f.sv_regs 0 st.regs 0 (Array.length st.regs);
      st.eip <- f.sv_eip;
      let op, d1, d2, nd = f.sv_cc in
      st.cc_op <- op;
      st.cc_dep1 <- d1;
      st.cc_dep2 <- d2;
      st.cc_ndep <- nd;
      Array.blit f.sv_fregs 0 st.fregs 0 (Array.length st.fregs);
      Array.blit f.sv_vregs 0 st.vregs 0 (Array.length st.vregs);
      th.sig_frames <- rest;
      true

let fatal (t : t) signal =
  if t.exit_reason = None then t.exit_reason <- Some (Fatal_signal signal)

let deliver_signal (t : t) (th : thread) (signal : int) =
  match Kernel.handler_for t.kern signal with
  | None -> fatal t signal
  | Some h ->
      save_frame th;
      let st = th.st in
      let sp = Int64.sub st.regs.(GA.reg_sp) 4L in
      Aspace.write t.mem sp 4 (Int64.of_int signal);
      let sp = Int64.sub sp 4L in
      Aspace.write t.mem sp 4 t.sigreturn_tramp;
      st.regs.(GA.reg_sp) <- sp;
      st.eip <- h.sh_addr

let switch_next (t : t) : bool =
  match List.filter (fun th -> th.status = `Runnable) t.threads with
  | [] -> false
  | rs ->
      let rec after = function
        | [] -> List.hd rs
        | th :: rest when th.tid = t.current.tid -> (
            match List.filter (fun x -> x.status = `Runnable) rest with
            | n :: _ -> n
            | [] -> List.hd rs)
        | _ :: rest -> after rest
      in
      t.current <- after t.threads;
      true

let handlers_for (t : t) : Guest.Interp.handlers =
  {
    on_syscall =
      (fun st ->
        let th = t.current in
        match Kernel.syscall t.kern ~tid:th.tid (regs_of th) with
        | Kernel.Ok -> ()
        | Kernel.Exit_process code ->
            if t.exit_reason = None then t.exit_reason <- Some (Exited code)
        | Kernel.Thread_create { entry; sp; arg } ->
            let tid = t.next_tid in
            t.next_tid <- tid + 1;
            let nth = make_thread t ~tid in
            nth.st.regs.(1) <- Support.Bits.trunc32 arg;
            let sp = Int64.sub sp 4L in
            Aspace.write t.mem sp 4 t.thread_exit_tramp;
            nth.st.regs.(GA.reg_sp) <- sp;
            nth.st.regs.(GA.reg_fp) <- sp;
            nth.st.eip <- entry;
            t.threads <- t.threads @ [ nth ];
            st.regs.(0) <- Int64.of_int tid
        | Kernel.Thread_exit ->
            th.status <- `Exited;
            if not (switch_next t) then
              if t.exit_reason = None then t.exit_reason <- Some (Exited 0)
        | Kernel.Yield -> ignore (switch_next t)
        | Kernel.Sigreturn ->
            if not (restore_frame th) then fatal t Kernel.Sig.sigsegv);
    on_clreq = (fun st -> st.regs.(0) <- 0L (* not running under a tool *));
  }

(** Load and run [image] to completion (or until [max_insns] if given).
    Returns the exit reason. *)
let run ?(max_insns = 0L) ?(stdin = "") (t : t) : exit_reason =
  Kernel.set_stdin t.kern stdin;
  t.kern.now_cycles <- (fun () -> total_cycles t);
  t.sigreturn_tramp <-
    (Aspace.map t.mem ~addr:(Aspace.round_down tramp_base) ~len:4096
       ~perm:Aspace.perm_rwx;
     write_tramp t [ GA.Movi (0, Int64.of_int Kernel.Num.sys_sigreturn); GA.Syscall ]);
  t.thread_exit_tramp <-
    write_tramp t [ GA.Movi (0, Int64.of_int Kernel.Num.sys_thread_exit); GA.Syscall ];
  let entry, sp, brk, _mapped = Guest.Image.load t.image t.mem in
  Kernel.set_brk_base t.kern brk;
  let main = t.current in
  main.st.regs.(GA.reg_sp) <- sp;
  main.st.regs.(GA.reg_fp) <- sp;
  main.st.eip <- entry;
  let handlers = handlers_for t in
  let slice = ref 0 in
  while t.exit_reason = None do
    if max_insns > 0L && Int64.unsigned_compare (total_insns t) max_insns > 0
    then t.exit_reason <- Some Out_of_fuel
    else begin
      (* pending signals are delivered between instructions *)
      (if not (Queue.is_empty t.kern.pending) then
         match Kernel.take_pending_signal t.kern with
         | Some (tid, signal) ->
             (match List.find_opt (fun th -> th.tid = tid) t.threads with
             | Some th when th.status = `Runnable -> t.current <- th
             | _ -> ());
             deliver_signal t t.current signal
         | None -> ());
      let th = t.current in
      if th.status <> `Runnable then begin
        if not (switch_next t) then t.exit_reason <- Some (Exited 0)
      end
      else begin
        (match Guest.Interp.step th.cache handlers with
        | () -> ()
        | exception Aspace.Fault _ ->
            deliver_signal t th Kernel.Sig.sigsegv
        | exception Guest.Interp.Sigill _ ->
            deliver_signal t th Kernel.Sig.sigill
        | exception Guest.Interp.Sigfpe _ ->
            deliver_signal t th Kernel.Sig.sigfpe);
        incr slice;
        if !slice >= timeslice_insns then begin
          slice := 0;
          ignore (switch_next t)
        end
      end
    end
  done;
  Option.value t.exit_reason ~default:(Exited 0)

let stdout_contents (t : t) = Kernel.stdout_contents t.kern
let stderr_contents (t : t) = Kernel.stderr_contents t.kern
