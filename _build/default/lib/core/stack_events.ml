(** Core-side instrumentation of stack-pointer changes (R7, §3.12).

    "A tool could detect [stack allocations] just by detecting changes to
    the stack pointer from the IR.  However, because it is a common
    requirement, Valgrind provides events for these cases.  The core
    instruments the code with calls to the event callbacks on the tool's
    behalf."

    This pass runs after tool instrumentation.  It tracks the stack
    pointer symbolically through the block: PUTs of [sp] whose value is
    provably [sp_entry + constant] become direct calls to the
    new/die_mem_stack helpers with a constant length; PUTs of an unknown
    value go through the unknown-SP-update helper, which applies the 2MB
    stack-switch heuristic (adjustable, and overridable by the
    stack-registration client requests, §3.12). *)

open Vex_ir.Ir
module GA = Guest.Arch

type helpers = {
  h_new : callee;  (** (sp_new, len): [sp_new, sp_new+len) was allocated *)
  h_die : callee;  (** (sp_new, len): [sp_new-len, sp_new) died *)
  h_unknown : callee;  (** (sp_new): delta unknown; helper reads old sp *)
}

(** Registered alternative stacks (client requests 0x0004–0x0006). *)
type registered_stacks = {
  mutable stacks : (int * int64 * int64) list;  (** (id, start, end) *)
  mutable next_id : int;
}

let make_registered_stacks () = { stacks = []; next_id = 1 }

(** The unknown-SP-update policy, shared with the helper implementation in
    {!Session}: returns [None] for a detected stack switch (no events), or
    [Some (new_low, len, is_alloc)]. *)
let classify_sp_change ~(threshold : int64) (regs : registered_stacks)
    ~(old_sp : int64) ~(new_sp : int64) : (int64 * int * bool) option =
  let delta = Int64.sub new_sp old_sp in
  let on_registered sp =
    List.exists
      (fun (_, lo, hi) ->
        Int64.unsigned_compare lo sp <= 0 && Int64.unsigned_compare sp hi <= 0)
      regs.stacks
  in
  let same_registered =
    List.exists
      (fun (_, lo, hi) ->
        Int64.unsigned_compare lo old_sp <= 0
        && Int64.unsigned_compare old_sp hi <= 0
        && Int64.unsigned_compare lo new_sp <= 0
        && Int64.unsigned_compare new_sp hi <= 0)
      regs.stacks
  in
  let abs_delta = Int64.abs delta in
  if delta = 0L then None
  else if
    (* a move between two distinct registered stacks is a switch *)
    (on_registered old_sp || on_registered new_sp) && not same_registered
  then None
  else if (not same_registered) && Int64.unsigned_compare abs_delta threshold > 0
  then None (* 2MB heuristic: treat as a stack switch *)
  else if Int64.compare delta 0L < 0 then
    Some (new_sp, Int64.to_int abs_delta, true)
  else Some (old_sp, Int64.to_int abs_delta, false)

let dirty callee args =
  Dirty
    { d_guard = i1 true; d_callee = callee; d_args = args; d_tmp = None;
      d_mfx = Mfx_none }

(** Instrument [b] with stack events. Only called when the tool has
    registered new/die_mem_stack callbacks. *)
let instrument (h : helpers) (b : block) : block =
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  (* delta of each temp relative to the block-entry SP, if provably
     sp-derived *)
  let deltas : (tmp, int64) Hashtbl.t = Hashtbl.create 16 in
  let cur_delta = ref (Some 0L) in
  (* the TS sp field currently holds entry_sp + cur_delta *)
  Support.Vec.iter
    (fun s ->
      (match s with
      | WrTmp (t, Get (off, I32)) when off = GA.off_sp -> (
          match !cur_delta with
          | Some d -> Hashtbl.replace deltas t d
          | None -> ())
      | WrTmp (t, Binop (Add32, RdTmp a, Const (CI32 k)))
      | WrTmp (t, Binop (Add32, Const (CI32 k), RdTmp a)) -> (
          match Hashtbl.find_opt deltas a with
          | Some d ->
              Hashtbl.replace deltas t
                (Support.Bits.sext32 (Int64.add d (Support.Bits.sext32 k)))
          | None -> ())
      | WrTmp (t, Binop (Sub32, RdTmp a, Const (CI32 k))) -> (
          match Hashtbl.find_opt deltas a with
          | Some d ->
              Hashtbl.replace deltas t
                (Support.Bits.sext32 (Int64.sub d (Support.Bits.sext32 k)))
          | None -> ())
      | _ -> ());
      match s with
      | Put (off, atom) when off = GA.off_sp -> (
          let known =
            match atom with
            | RdTmp t -> Hashtbl.find_opt deltas t
            | _ -> None
          in
          match (known, !cur_delta) with
          | Some d, Some prev ->
              let change = Int64.sub d prev in
              add_stmt nb s;
              if Int64.compare change 0L < 0 then
                add_stmt nb
                  (dirty h.h_new [ atom; i32 (Int64.neg change) ])
              else if Int64.compare change 0L > 0 then
                add_stmt nb (dirty h.h_die [ atom; i32 change ]);
              cur_delta := Some d
          | _ ->
              (* unknown update: helper reads the old sp from the
                 ThreadState, so call it before the PUT *)
              add_stmt nb (dirty h.h_unknown [ atom ]);
              add_stmt nb s;
              (* rebase: the stored value becomes the new reference *)
              Hashtbl.reset deltas;
              (match atom with
              | RdTmp t -> Hashtbl.replace deltas t 0L
              | _ -> ());
              cur_delta := Some 0L)
      | s -> add_stmt nb s)
    b.stmts;
  nb
