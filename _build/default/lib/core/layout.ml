(** Address-space policy: how the single process is partitioned between
    the client and the core+tool (§3.3, §3.10).

    The core loads "at a non-standard address that is usually free at
    program start-up (on x86/Linux it is 0x38000000)"; we reserve the
    same region for everything the core owns: translations, ThreadStates,
    the tool arena and replacement-function stubs.  Client mmap requests
    that would intrude are refused without consulting the kernel. *)

(* Client space *)
let client_text_base = Guest.Image.default_text_base
let client_mmap_base = 0x2000_0000L
let client_mmap_limit = 0x3000_0000L
let client_stack_top = Guest.Image.stack_top

(* Core/tool space: [valgrind_base, valgrind_limit) *)
let valgrind_base = 0x3800_0000L
let valgrind_limit = 0x7000_0000L

(** ThreadState blocks (one per thread, {!Host.Arch.threadstate_size}
    bytes each). *)
let threadstate_base = 0x3880_0000L

(** Translation code blocks. *)
let code_cache_base = 0x3900_0000L

let code_cache_limit = 0x3A00_0000L

(** Core allocator arena (tool data structures, guest-visible stubs). *)
let tool_arena_base = 0x3A00_0000L

let tool_arena_limit = 0x3C00_0000L

(** Replacement-function stub code. *)
let stub_base = 0x3C00_0000L

let stub_limit = 0x3C10_0000L

(** Does a client mapping request intrude on the core's space? *)
let client_map_allowed (addr : int64) (len : int) : bool =
  let hi = Int64.add addr (Int64.of_int len) in
  not
    (Int64.unsigned_compare addr valgrind_limit < 0
    && Int64.unsigned_compare hi valgrind_base > 0)
