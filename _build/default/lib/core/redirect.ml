(** Function replacement and wrapping (paper §3.13).

    A replacement routes guest calls of a symbol to an OCaml handler: the
    core writes a small guest-code stub ([movi r0, code; clreq; ret])
    into its own region and adds a redirection from the symbol's address
    to the stub.  Redirections are applied when a translation is {e made}
    (the translation for address A is generated from the code at
    [redirect A] but indexed under A), so no client code is patched.

    Wrapping additionally lets the original run: the stub performs
    [clreq enter; call original'; clreq exit; ret] where [original'] is a
    {e no-redirect alias} of the original's address — translating the
    alias fetches the original's code without re-entering the
    redirection, the analogue of Valgrind's "nraddr" mechanism. *)

type handler = unit -> unit

type t = {
  mem : Aspace.t;
  (* symbol-address -> replacement address *)
  redirects : (int64, int64) Hashtbl.t;
  (* internal clreq code -> handler *)
  handlers : (int64, handler) Hashtbl.t;
  (* no-redirect alias -> real address *)
  aliases : (int64, int64) Hashtbl.t;
  (* stub address -> human-readable name, for stack traces *)
  stub_names : (int64, string) Hashtbl.t;
  mutable next_code : int64;
  mutable next_stub : int64;
  mutable next_alias : int64;
}

let alias_base = 0x7100_0000L
let alias_limit = 0x7200_0000L

let create (mem : Aspace.t) : t =
  Aspace.map mem ~addr:Layout.stub_base
    ~len:(Int64.to_int (Int64.sub Layout.stub_limit Layout.stub_base))
    ~perm:Aspace.perm_rwx;
  {
    mem;
    redirects = Hashtbl.create 16;
    handlers = Hashtbl.create 16;
    aliases = Hashtbl.create 16;
    stub_names = Hashtbl.create 16;
    next_code = Clientreq.internal_base;
    next_stub = Layout.stub_base;
    next_alias = alias_base;
  }

let fresh_code t =
  let c = t.next_code in
  t.next_code <- Int64.add c 1L;
  c

let write_stub t (insns : Guest.Arch.insn list) : int64 =
  let buf = Support.Buf.create () in
  List.iter (Guest.Encode.emit buf) insns;
  let bytes = Support.Buf.contents buf in
  let addr = t.next_stub in
  t.next_stub <- Int64.add addr (Int64.of_int (Bytes.length bytes + 4));
  if Int64.unsigned_compare t.next_stub Layout.stub_limit >= 0 then
    failwith "Redirect: stub region exhausted";
  Aspace.write_bytes t.mem addr bytes;
  addr

(** Resolve the address translation should fetch from, given a requested
    guest PC: no-redirect aliases win, then redirections, else identity. *)
let resolve (t : t) (pc : int64) : int64 =
  match Hashtbl.find_opt t.aliases pc with
  | Some real -> real
  | None -> (
      match Hashtbl.find_opt t.redirects pc with
      | Some repl -> repl
      | None -> pc)

let lookup_handler t code = Hashtbl.find_opt t.handlers code

(** Name of the stub covering [addr], if any (for stack traces). *)
let stub_name (t : t) (addr : int64) : string option =
  if
    Int64.unsigned_compare addr Layout.stub_base >= 0
    && Int64.unsigned_compare addr t.next_stub < 0
  then
    (* find the nearest stub base at or below addr *)
    Hashtbl.fold
      (fun base name acc ->
        if Int64.unsigned_compare base addr <= 0 then
          match acc with
          | Some (b, _) when Int64.unsigned_compare b base >= 0 -> acc
          | _ -> Some (base, name)
        else acc)
      t.stub_names None
    |> Option.map snd
  else None

(** Replace [addr]'s function with [handler].  The handler must emulate
    the whole call: read arguments from the guest stack, write the result
    to r0.  The stub's [ret] then returns to the caller. *)
let replace ?(name = "redirected") (t : t) ~(addr : int64)
    ~(handler : handler) : unit =
  let code = fresh_code t in
  Hashtbl.replace t.handlers code handler;
  let stub =
    write_stub t [ Guest.Arch.Movi (0, code); Guest.Arch.Clreq; Guest.Arch.Ret ]
  in
  Hashtbl.replace t.stub_names stub name;
  Hashtbl.replace t.redirects addr stub

(** Wrap the [arity]-argument function at [addr].  [on_enter] sees the
    original arguments on the guest stack at [sp+4..sp+4*arity];
    [on_exit] finds the original's return value in guest r1 and must
    write the final result to r0 (write r1's value for transparent
    wrapping).  The original runs via a no-redirect alias, so wrapping
    does not loop. *)
let wrap (t : t) ~(addr : int64) ~(arity : int) ~(on_enter : handler)
    ~(on_exit : handler) : unit =
  let enter_code = fresh_code t in
  let exit_code = fresh_code t in
  Hashtbl.replace t.handlers enter_code on_enter;
  Hashtbl.replace t.handlers exit_code on_exit;
  let alias = t.next_alias in
  t.next_alias <- Int64.add alias 16L;
  if Int64.unsigned_compare t.next_alias alias_limit >= 0 then
    failwith "Redirect: alias region exhausted";
  Hashtbl.replace t.aliases alias addr;
  let open Guest.Arch in
  let copy_args =
    (* each iteration copies the next-outermost argument: the source is
       always [sp + 4*arity] as pushes accumulate *)
    List.concat
      (List.init arity (fun _ ->
           [ Ld (W4, Zx, 1, mem_b reg_sp (Int64.of_int (4 * arity))); Push 1 ]))
  in
  let stub =
    write_stub t
      ([ Movi (0, enter_code); Clreq ]
      @ copy_args
      @ [
          Call alias;
          (if arity > 0 then Alui (ADD, reg_sp, Int64.of_int (4 * arity))
           else Nop);
          Mov (1, 0);
          Movi (0, exit_code);
          Clreq;
          Ret;
        ])
  in
  Hashtbl.replace t.redirects addr stub

let n_redirects t = Hashtbl.length t.redirects
