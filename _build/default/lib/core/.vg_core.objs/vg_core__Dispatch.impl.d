lib/core/dispatch.ml: Array Int64 Jit
