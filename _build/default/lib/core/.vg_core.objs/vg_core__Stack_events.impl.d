lib/core/stack_events.ml: Guest Hashtbl Int64 List Support Vex_ir
