lib/core/events.ml: Int64
