lib/core/syswrap.ml: Events Guest Int64 Kernel Num
