lib/core/redirect.ml: Aspace Bytes Clientreq Guest Hashtbl Int64 Layout List Option Support
