lib/core/threads.ml: Aspace Bytes Guest Host Int64 Kernel Layout List Support
