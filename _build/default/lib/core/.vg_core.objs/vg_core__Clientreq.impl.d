lib/core/clientreq.ml:
