lib/core/transtab.ml: Array Fun Int64 Jit List
