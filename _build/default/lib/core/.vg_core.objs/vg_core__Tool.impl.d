lib/core/tool.ml: Aspace Errors Events Vex_ir
