lib/core/errors.ml: Buffer List Printf String
