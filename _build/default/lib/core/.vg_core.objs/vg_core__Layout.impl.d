lib/core/layout.ml: Guest Int64
