(** The translation table (paper §3.8): a fixed-size, linear-probe hash
    table from guest address to translation.  When it passes 80% full,
    translations are evicted in chunks, 1/8th of the table at a time,
    using a FIFO policy ("chosen over the more obvious LRU because it is
    simpler and still does a fairly good job").  Translations are also
    evicted when client code is unmapped or discarded by the
    self-modifying-code machinery. *)

type entry = {
  e_key : int64;
  e_trans : Jit.Pipeline.translation;
  e_seq : int;  (** insertion sequence number, for FIFO eviction *)
}

type t = {
  mutable slots : entry option array;
  capacity : int;
  mutable used : int;
  mutable seq : int;
  (* statistics *)
  mutable n_inserts : int;
  mutable n_evict_chunks : int;
  mutable n_evicted : int;
  mutable n_discards : int;
}

let create ?(capacity = 32768) () =
  {
    slots = Array.make capacity None;
    capacity;
    used = 0;
    seq = 0;
    n_inserts = 0;
    n_evict_chunks = 0;
    n_evicted = 0;
    n_discards = 0;
  }

let hash t (key : int64) =
  (* fibonacci hashing of the low word *)
  let h = Int64.mul key 0x9E3779B97F4A7C15L in
  Int64.to_int (Int64.shift_right_logical h 40) mod t.capacity

let find (t : t) (key : int64) : Jit.Pipeline.translation option =
  let rec probe i n =
    if n > t.capacity then None
    else
      match t.slots.(i) with
      | None -> None
      | Some e when e.e_key = key -> Some e.e_trans
      | Some _ -> probe ((i + 1) mod t.capacity) (n + 1)
  in
  probe (hash t key) 0

(* Rebuild the table from a list of entries (preserving seq). *)
let rebuild t (entries : entry list) =
  t.slots <- Array.make t.capacity None;
  t.used <- 0;
  List.iter
    (fun e ->
      let rec probe i =
        match t.slots.(i) with
        | None ->
            t.slots.(i) <- Some e;
            t.used <- t.used + 1
        | Some _ -> probe ((i + 1) mod t.capacity)
      in
      probe (hash t e.e_key))
    entries

let all_entries t =
  Array.to_list t.slots |> List.filter_map Fun.id

(* FIFO chunk eviction: drop the oldest 1/8th of the live entries. *)
let evict_chunk t =
  let entries =
    all_entries t |> List.sort (fun a b -> compare a.e_seq b.e_seq)
  in
  let n_drop = max 1 (t.capacity / 8) in
  let rec split n = function
    | [] -> []
    | _ :: rest when n > 0 -> split (n - 1) rest
    | keep -> keep
  in
  let kept = split n_drop entries in
  t.n_evict_chunks <- t.n_evict_chunks + 1;
  t.n_evicted <- t.n_evicted + (List.length entries - List.length kept);
  rebuild t kept

let insert (t : t) (key : int64) (trans : Jit.Pipeline.translation) =
  if t.used * 10 >= t.capacity * 8 then evict_chunk t;
  t.n_inserts <- t.n_inserts + 1;
  t.seq <- t.seq + 1;
  let e = { e_key = key; e_trans = trans; e_seq = t.seq } in
  let rec probe i =
    match t.slots.(i) with
    | None ->
        t.slots.(i) <- Some e;
        t.used <- t.used + 1
    | Some old when old.e_key = key -> t.slots.(i) <- Some e
    | Some _ -> probe ((i + 1) mod t.capacity)
  in
  probe (hash t key)

(** Discard translations whose covered guest ranges intersect
    [addr, addr+len) — used by munmap and the discard client request
    (§3.8, §3.16). Returns how many were discarded. *)
let discard_range (t : t) (addr : int64) (len : int) : int =
  let hi = Int64.add addr (Int64.of_int len) in
  let intersects (a, l) =
    let ahi = Int64.add a (Int64.of_int l) in
    Int64.unsigned_compare a hi < 0 && Int64.unsigned_compare addr ahi < 0
  in
  let keep, drop =
    List.partition
      (fun e -> not (List.exists intersects e.e_trans.Jit.Pipeline.t_guest_ranges))
      (all_entries t)
  in
  let n = List.length drop in
  if n > 0 then begin
    t.n_discards <- t.n_discards + n;
    rebuild t keep
  end;
  n

(** Discard a single entry by key (SMC retranslation). *)
let discard_key (t : t) (key : int64) =
  let keep = List.filter (fun e -> e.e_key <> key) (all_entries t) in
  t.n_discards <- t.n_discards + 1;
  rebuild t keep

let occupancy t = float_of_int t.used /. float_of_int t.capacity
