(** Condition-code computation from the lazy flags thunk.

    VG32 instructions that set flags don't compute a flags word eagerly.
    Instead the translator records {e how} flags would be computed — an
    operation tag plus up to three dependents — in four guest-state fields
    ([cc_op], [cc_dep1], [cc_dep2], [cc_ndep]), and the actual flags are
    materialised lazily by the functions here when a [jcc]/[setcc] needs
    them (paper §3.6: "many x86 instructions affect the condition codes
    (%eflags), and Valgrind computes them from these four values when they
    are used. Often %eflags is clobbered without being used, so most of
    these PUTs can be optimised away later").

    This module is shared verbatim by the guest reference interpreter and
    by the IR helper functions the JIT emits [CCall]s to, so the two
    semantics cannot drift. *)

open Support

(* Thunk operation tags. *)
let cc_op_copy = 0L (* dep1 = literal flags word *)
let cc_op_add = 1L (* dep1 + dep2 *)
let cc_op_sub = 2L (* dep1 - dep2 (also cmp, neg with dep1=0) *)
let cc_op_logic = 3L (* dep1 = result; CF=OF=0 *)
let cc_op_shl = 4L (* dep1 = result, dep2 = original count *)
let cc_op_shr = 5L
let cc_op_sar = 6L
let cc_op_mul = 7L (* dep1 = low result, dep2 = high result *)
let cc_op_inc = 8L (* dep1 = result, ndep = old CF *)
let cc_op_dec = 9L
let cc_op_fcmp = 10L (* dep1 = 0 eq / 1 lt / 2 gt / 3 unordered *)
let cc_op_count = 11

(* Flags word bits. *)
let fl_cf = 1L
let fl_zf = 2L
let fl_sf = 4L
let fl_of = 8L

let bit b cond = if cond then b else 0L

let zf_sf res =
  Int64.logor
    (bit fl_zf (Bits.trunc32 res = 0L))
    (bit fl_sf (Int64.logand res 0x8000_0000L <> 0L))

(** Compute the 4-bit flags word from a thunk. *)
let calculate ~op ~dep1 ~dep2 ~ndep : int64 =
  let d1 = Bits.trunc32 dep1 and d2 = Bits.trunc32 dep2 in
  if op = cc_op_copy then Int64.logand d1 0xFL
  else if op = cc_op_add then begin
    let res = Bits.trunc32 (Int64.add d1 d2) in
    let cf = bit fl_cf (Bits.cmp32u res d1 < 0) in
    let ovf =
      (* signed overflow: operands same sign, result different *)
      Int64.logand (Int64.logand (Int64.lognot (Int64.logxor d1 d2)) (Int64.logxor d1 res)) 0x8000_0000L
    in
    Int64.logor (Int64.logor cf (zf_sf res)) (bit fl_of (ovf <> 0L))
  end
  else if op = cc_op_sub then begin
    let res = Bits.trunc32 (Int64.sub d1 d2) in
    let cf = bit fl_cf (Bits.cmp32u d1 d2 < 0) in
    let ovf =
      Int64.logand (Int64.logand (Int64.logxor d1 d2) (Int64.logxor d1 res)) 0x8000_0000L
    in
    Int64.logor (Int64.logor cf (zf_sf res)) (bit fl_of (ovf <> 0L))
  end
  else if op = cc_op_logic then zf_sf d1
  else if op = cc_op_shl || op = cc_op_shr || op = cc_op_sar then
    (* Flags from the result only; CF from the last bit shifted out is not
       modelled (VG32 defines shift CF = 0, unlike x86). *)
    zf_sf d1
  else if op = cc_op_mul then begin
    let lo = d1 and hi = d2 in
    let sign_ext_ok = hi = Bits.trunc32 (Int64.shift_right (Bits.sext32 lo) 31) in
    let cfof = if sign_ext_ok then 0L else Int64.logor fl_cf fl_of in
    Int64.logor cfof (zf_sf lo)
  end
  else if op = cc_op_inc then begin
    let res = d1 in
    let old_cf = Int64.logand ndep fl_cf in
    Int64.logor
      (Int64.logor old_cf (zf_sf res))
      (bit fl_of (res = 0x8000_0000L))
  end
  else if op = cc_op_dec then begin
    let res = d1 in
    let old_cf = Int64.logand ndep fl_cf in
    Int64.logor
      (Int64.logor old_cf (zf_sf res))
      (bit fl_of (res = 0x7FFF_FFFFL))
  end
  else if op = cc_op_fcmp then begin
    (* like x86 ucomisd: unordered -> ZF|CF, eq -> ZF, lt -> CF, gt -> none *)
    match Int64.to_int d1 with
    | 0 -> fl_zf
    | 1 -> fl_cf
    | 2 -> 0L
    | _ -> Int64.logor fl_zf fl_cf
  end
  else invalid_arg "Flags.calculate: bad cc_op"

(** Encode an fcmp outcome into the dep1 code used by [cc_op_fcmp]. *)
let fcmp_code (a : float) (b : float) : int64 =
  if Float.is_nan a || Float.is_nan b then 3L
  else if a = b then 0L
  else if a < b then 1L
  else 2L

(** Evaluate condition [c] against a flags word. *)
let cond_holds (c : Arch.cond) (flags : int64) : bool =
  let cf = Int64.logand flags fl_cf <> 0L in
  let zf = Int64.logand flags fl_zf <> 0L in
  let sf = Int64.logand flags fl_sf <> 0L in
  let ofl = Int64.logand flags fl_of <> 0L in
  match c with
  | Ceq -> zf
  | Cne -> not zf
  | Clts -> sf <> ofl
  | Cles -> zf || sf <> ofl
  | Cgts -> (not zf) && sf = ofl
  | Cges -> sf = ofl
  | Cltu -> cf
  | Cleu -> cf || zf
  | Cgtu -> (not cf) && not zf
  | Cgeu -> not cf
  | Cs -> sf
  | Cns -> not sf

(** Integer encoding of conditions, used as the first argument of the
    [vg32_calculate_condition] IR helper. *)
let cond_to_int : Arch.cond -> int = function
  | Ceq -> 0 | Cne -> 1 | Clts -> 2 | Cles -> 3 | Cgts -> 4 | Cges -> 5
  | Cltu -> 6 | Cleu -> 7 | Cgtu -> 8 | Cgeu -> 9 | Cs -> 10 | Cns -> 11

let cond_of_int : int -> Arch.cond = function
  | 0 -> Ceq | 1 -> Cne | 2 -> Clts | 3 -> Cles | 4 -> Cgts | 5 -> Cges
  | 6 -> Cltu | 7 -> Cleu | 8 -> Cgtu | 9 -> Cgeu | 10 -> Cs | 11 -> Cns
  | _ -> invalid_arg "Flags.cond_of_int"

(** [calculate_condition cond_code op dep1 dep2 ndep] -> 0/1.  This is the
    semantic core of the [vg32_calculate_condition] helper the
    disassembler emits for [jcc]/[setcc] (mirroring VEX's
    [x86g_calculate_condition]). *)
let calculate_condition ~cond ~op ~dep1 ~dep2 ~ndep : int64 =
  let flags = calculate ~op ~dep1 ~dep2 ~ndep in
  if cond_holds (cond_of_int cond) flags then 1L else 0L

(** Thunk op for the ALU operation [op] (which VG32 flag-setters use). *)
let cc_op_of_alu : Arch.alu_op -> int64 = function
  | ADD -> cc_op_add
  | SUB -> cc_op_sub
  | AND | OR | XOR -> cc_op_logic
  | SHL -> cc_op_shl
  | SHR -> cc_op_shr
  | SAR -> cc_op_sar
  | MUL -> cc_op_mul
  | DIVS | DIVU -> cc_op_logic (* div leaves flags from result *)
