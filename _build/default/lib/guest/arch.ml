(** The VG32 guest architecture.

    VG32 is the synthetic 32-bit guest ISA this reproduction runs instead
    of x86 (see DESIGN.md §1).  It is deliberately CISC-flavoured in the
    ways that matter to the paper's arguments:

    - arithmetic instructions set condition codes as a side effect, so a
      D&R translator must synthesise flags explicitly via a lazy
      four-field thunk ([cc_op]/[cc_dep1]/[cc_dep2]/[cc_ndep]), exactly
      like Valgrind's x86 front end (paper Figure 1, statements 9–12);
    - memory operands use [base + index*scale + disp] addressing, so one
      guest instruction decomposes into several IR operations;
    - there are FP (F64) and SIMD (V128) register files, which shadow
      value tools must be able to shadow (R1);
    - instructions are variable-length byte-encoded, so translation needs
      a real decoder and self-modifying code is detectable only by
      hashing (§3.16);
    - there is a [sysinfo] instruction (the analogue of x86 [cpuid])
      that is too irregular to represent in IR and is handled by a dirty
      helper call with guest-state effect annotations (§3.6). *)

(** {1 Registers and the guest-state layout}

    The guest state is a block of bytes (inside each thread's ThreadState)
    accessed by the IR via byte offsets.  Shadow registers live at
    [offset + shadow_offset] (paper §3.7: "%eax is stored at offset 0 ...
    its shadow is stored at offset 320"). *)

type reg = int (* integer register r0..r7; r6 = frame pointer, r7 = sp *)
type freg = int (* FP register f0..f3, IEEE754 double *)
type vreg = int (* SIMD register v0..v3, 128-bit *)

let n_regs = 8
let n_fregs = 4
let n_vregs = 4
let reg_fp = 6
let reg_sp = 7

(* Byte offsets in the guest-state block. *)
let off_reg r = 4 * r
let off_sp = off_reg reg_sp (* 28; the core watches PUTs here for R7 stack events *)
let off_eip = 32
let off_cc_op = 36
let off_cc_dep1 = 40
let off_cc_dep2 = 44
let off_cc_ndep = 48
let off_freg f = 56 + (8 * f)
let off_vreg v = 96 + (16 * v)
let guest_state_used = 160

(** Size reserved for the architectural guest state; the shadow block for
    tool use starts right after. *)
let shadow_offset = 320

(** Offset of the shadow of the guest-state byte at [off]. *)
let shadow_of off = off + shadow_offset

(** Total guest+shadow state size. The JIT's register allocator also owns a
    spill zone beyond this (see {!Host.Arch}). *)
let state_size = 640

let reg_name r = Printf.sprintf "r%d" r
let freg_name f = Printf.sprintf "f%d" f
let vreg_name v = Printf.sprintf "v%d" v

(** Pretty name of a guest-state offset, for IR comments and errors. *)
let rec offset_name off =
  if off >= 0 && off < 32 && off mod 4 = 0 then reg_name (off / 4)
  else if off = off_eip then "eip"
  else if off = off_cc_op then "cc_op"
  else if off = off_cc_dep1 then "cc_dep1"
  else if off = off_cc_dep2 then "cc_dep2"
  else if off = off_cc_ndep then "cc_ndep"
  else if off >= 56 && off < 88 && (off - 56) mod 8 = 0 then freg_name ((off - 56) / 8)
  else if off >= 96 && off < 160 && (off - 96) mod 16 = 0 then vreg_name ((off - 96) / 16)
  else if off >= shadow_offset && off < shadow_offset + guest_state_used then
    "sh(" ^ offset_name (off - shadow_offset) ^ ")"
  else Printf.sprintf "gst+%d" off

(** {1 Instructions} *)

(** Memory operand: [disp(base, index, scale)], scale in {1,2,4,8}. *)
type mem = { base : reg option; index : (reg * int) option; disp : int64 }

let mem_abs disp = { base = None; index = None; disp }
let mem_b base disp = { base = Some base; index = None; disp }
let mem_bi base index scale disp = { base = Some base; index = Some (index, scale); disp }

type alu_op = ADD | SUB | AND | OR | XOR | SHL | SHR | SAR | MUL | DIVS | DIVU

type cond =
  | Ceq | Cne        (* ZF *)
  | Clts | Cles | Cgts | Cges  (* signed *)
  | Cltu | Cleu | Cgtu | Cgeu  (* unsigned *)
  | Cs | Cns         (* sign flag *)

type falu_op = FADD | FSUB | FMUL | FDIV | FMIN | FMAX
type fun1_op = FSQRT | FNEG | FABS
type valu_op = VAND | VOR | VXOR | VADD32 | VSUB32 | VCMPEQ32 | VADD8 | VSUB8

(** Load/store width in bytes (1, 2 or 4) and signedness of the widening. *)
type width = W1 | W2 | W4

type signedness = Zx | Sx

type insn =
  | Nop
  | Mov of reg * reg
  | Movi of reg * int64
  | Lea of reg * mem
  | Ld of width * signedness * reg * mem
  | St of width * mem * reg
  | Alu of alu_op * reg * reg  (** [rd := rd op rs], sets flags *)
  | Alui of alu_op * reg * int64
  | Cmp of reg * reg  (** flags := rd - rs *)
  | Cmpi of reg * int64
  | Test of reg * reg  (** flags := rd & rs *)
  | Inc of reg
  | Dec of reg
  | Neg of reg  (** sets SUB flags (0 - rd) *)
  | Not of reg  (** does not touch flags *)
  | Setcc of cond * reg
  | Jcc of cond * int64  (** absolute target *)
  | Jmp of int64
  | Jmpi of reg
  | Call of int64  (** pushes return address *)
  | Calli of reg
  | Ret
  | Push of reg
  | Pushi of int64
  | Pop of reg
  | Sysinfo  (** cpuid-like: r0 = leaf in, r0/r1 out; dirty-helper territory *)
  | Syscall  (** number in r0, args r1..r5, result in r0 *)
  | Clreq  (** client request: r0 = code, r1 = arg block ptr, result in r0 *)
  | Fld of freg * mem
  | Fst of mem * freg
  | Fmovr of freg * freg
  | Fldi of freg * float
  | Falu of falu_op * freg * freg  (** [fd := fd op fs] *)
  | Fun1 of fun1_op * freg * freg  (** [fd := op fs] *)
  | Fcmp of freg * freg  (** sets FCMP flags *)
  | Fitod of freg * reg
  | Fdtoi of reg * freg  (** truncate toward zero *)
  | Vld of vreg * mem
  | Vst of mem * vreg
  | Vmovr of vreg * vreg
  | Valu of valu_op * vreg * vreg  (** [vd := vd op vs] *)
  | Vsplat of vreg * reg
  | Vextr of reg * vreg * int  (** lane 0..3 *)
  | Ud  (** undefined opcode: raises SIGILL *)

let cond_name = function
  | Ceq -> "eq" | Cne -> "ne"
  | Clts -> "lt" | Cles -> "le" | Cgts -> "gt" | Cges -> "ge"
  | Cltu -> "b" | Cleu -> "be" | Cgtu -> "a" | Cgeu -> "ae"
  | Cs -> "s" | Cns -> "ns"

let alu_name = function
  | ADD -> "add" | SUB -> "sub" | AND -> "and" | OR -> "or" | XOR -> "xor"
  | SHL -> "shl" | SHR -> "shr" | SAR -> "sar" | MUL -> "mul"
  | DIVS -> "divs" | DIVU -> "divu"

let falu_name = function
  | FADD -> "fadd" | FSUB -> "fsub" | FMUL -> "fmul" | FDIV -> "fdiv"
  | FMIN -> "fmin" | FMAX -> "fmax"

let fun1_name = function FSQRT -> "fsqrt" | FNEG -> "fneg" | FABS -> "fabs"

let valu_name = function
  | VAND -> "vand" | VOR -> "vor" | VXOR -> "vxor"
  | VADD32 -> "vadd32" | VSUB32 -> "vsub32" | VCMPEQ32 -> "vcmpeq32"
  | VADD8 -> "vadd8" | VSUB8 -> "vsub8"

let pp_mem ppf (m : mem) =
  (match (m.base, m.index) with
  | None, None -> Fmt.pf ppf "[0x%LX]" (Support.Bits.trunc32 m.disp)
  | Some b, None -> Fmt.pf ppf "[%s%+Ld]" (reg_name b) (Support.Bits.sext32 m.disp)
  | Some b, Some (i, s) ->
      Fmt.pf ppf "[%s+%s*%d%+Ld]" (reg_name b) (reg_name i) s
        (Support.Bits.sext32 m.disp)
  | None, Some (i, s) ->
      Fmt.pf ppf "[%s*%d%+Ld]" (reg_name i) s (Support.Bits.sext32 m.disp))

let pp_insn ppf (i : insn) =
  let r = reg_name and f = freg_name and v = vreg_name in
  match i with
  | Nop -> Fmt.string ppf "nop"
  | Mov (d, s) -> Fmt.pf ppf "mov %s, %s" (r d) (r s)
  | Movi (d, imm) -> Fmt.pf ppf "movi %s, 0x%LX" (r d) (Support.Bits.trunc32 imm)
  | Lea (d, m) -> Fmt.pf ppf "lea %s, %a" (r d) pp_mem m
  | Ld (w, sx, d, m) ->
      let suffix = match (w, sx) with
        | W1, Zx -> "b" | W1, Sx -> "bs" | W2, Zx -> "h" | W2, Sx -> "hs"
        | W4, _ -> "w"
      in
      Fmt.pf ppf "ld%s %s, %a" suffix (r d) pp_mem m
  | St (w, m, s) ->
      let suffix = match w with W1 -> "b" | W2 -> "h" | W4 -> "w" in
      Fmt.pf ppf "st%s %a, %s" suffix pp_mem m (r s)
  | Alu (op, d, s) -> Fmt.pf ppf "%s %s, %s" (alu_name op) (r d) (r s)
  | Alui (op, d, imm) ->
      Fmt.pf ppf "%si %s, 0x%LX" (alu_name op) (r d) (Support.Bits.trunc32 imm)
  | Cmp (a, b) -> Fmt.pf ppf "cmp %s, %s" (r a) (r b)
  | Cmpi (a, imm) -> Fmt.pf ppf "cmpi %s, 0x%LX" (r a) (Support.Bits.trunc32 imm)
  | Test (a, b) -> Fmt.pf ppf "test %s, %s" (r a) (r b)
  | Inc d -> Fmt.pf ppf "inc %s" (r d)
  | Dec d -> Fmt.pf ppf "dec %s" (r d)
  | Neg d -> Fmt.pf ppf "neg %s" (r d)
  | Not d -> Fmt.pf ppf "not %s" (r d)
  | Setcc (c, d) -> Fmt.pf ppf "set%s %s" (cond_name c) (r d)
  | Jcc (c, t) -> Fmt.pf ppf "j%s 0x%LX" (cond_name c) t
  | Jmp t -> Fmt.pf ppf "jmp 0x%LX" t
  | Jmpi s -> Fmt.pf ppf "jmp* %s" (r s)
  | Call t -> Fmt.pf ppf "call 0x%LX" t
  | Calli s -> Fmt.pf ppf "call* %s" (r s)
  | Ret -> Fmt.string ppf "ret"
  | Push s -> Fmt.pf ppf "push %s" (r s)
  | Pushi imm -> Fmt.pf ppf "pushi 0x%LX" (Support.Bits.trunc32 imm)
  | Pop d -> Fmt.pf ppf "pop %s" (r d)
  | Sysinfo -> Fmt.string ppf "sysinfo"
  | Syscall -> Fmt.string ppf "syscall"
  | Clreq -> Fmt.string ppf "clreq"
  | Fld (d, m) -> Fmt.pf ppf "fld %s, %a" (f d) pp_mem m
  | Fst (m, s) -> Fmt.pf ppf "fst %a, %s" pp_mem m (f s)
  | Fmovr (d, s) -> Fmt.pf ppf "fmov %s, %s" (f d) (f s)
  | Fldi (d, x) -> Fmt.pf ppf "fldi %s, %h" (f d) x
  | Falu (op, d, s) -> Fmt.pf ppf "%s %s, %s" (falu_name op) (f d) (f s)
  | Fun1 (op, d, s) -> Fmt.pf ppf "%s %s, %s" (fun1_name op) (f d) (f s)
  | Fcmp (a, b) -> Fmt.pf ppf "fcmp %s, %s" (f a) (f b)
  | Fitod (d, s) -> Fmt.pf ppf "fitod %s, %s" (f d) (r s)
  | Fdtoi (d, s) -> Fmt.pf ppf "fdtoi %s, %s" (r d) (f s)
  | Vld (d, m) -> Fmt.pf ppf "vld %s, %a" (v d) pp_mem m
  | Vst (m, s) -> Fmt.pf ppf "vst %a, %s" pp_mem m (v s)
  | Vmovr (d, s) -> Fmt.pf ppf "vmov %s, %s" (v d) (v s)
  | Valu (op, d, s) -> Fmt.pf ppf "%s %s, %s" (valu_name op) (v d) (v s)
  | Vsplat (d, s) -> Fmt.pf ppf "vsplat %s, %s" (v d) (r s)
  | Vextr (d, s, lane) -> Fmt.pf ppf "vextr %s, %s, %d" (r d) (v s) lane
  | Ud -> Fmt.string ppf "ud"
