lib/guest/arch.ml: Fmt Printf Support
