lib/guest/encode.ml: Arch Bits Buf Bytes Flags Support
