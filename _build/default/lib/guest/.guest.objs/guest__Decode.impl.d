lib/guest/decode.ml: Arch Flags Int64 Support
