lib/guest/asm.ml: Arch Buffer Bytes Char Encode Fmt Hashtbl Image Int64 List Option String Support
