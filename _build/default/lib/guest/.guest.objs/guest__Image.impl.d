lib/guest/image.ml: Aspace Bytes Int64 List
