lib/guest/flags.ml: Arch Bits Float Int64 Support
