lib/guest/interp.ml: Arch Array Aspace Bits Decode Flags Float Hashtbl Int64 List Support V128
