(** Two-pass textual assembler for VG32.

    Syntax (one statement per line, [;] or [#] comments):

    {v
            .text
            .global _start
    _start: movi r0, 10
            call fact            ; labels are absolute targets
            ldw  r1, [r7+r0*4+8] ; base + index*scale + disp
            jeq  done
            .data
    msg:    .asciz "hello"
    tbl:    .word 1, 2, 3, end-ish_label
            .space 64
            .align 8
            .f64 3.5
    v}

    Register aliases: [sp] = r7, [fp] = r6.  Immediates may be decimal,
    hex ([0x..]), negative, [label], or [label+n].  The entry point is
    [_start] if defined, else [main], else the start of text. *)

open Arch

exception Error of { line : int; msg : string }

let err line fmt = Fmt.kstr (fun msg -> raise (Error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Symbolic immediates                                                  *)
(* ------------------------------------------------------------------ *)

type term = Num of int64 | Sym of string
type iexpr = (bool * term) list (* (negated, term) summands *)

let eval_iexpr line (resolve : string -> int64 option) (e : iexpr) : int64 =
  List.fold_left
    (fun acc (neg, t) ->
      let v =
        match t with
        | Num n -> n
        | Sym s -> (
            match resolve s with
            | Some v -> v
            | None -> err line "undefined symbol '%s'" s)
      in
      if neg then Int64.sub acc v else Int64.add acc v)
    0L e

(* ------------------------------------------------------------------ *)
(* Tokenising operands                                                  *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let parse_reg line (s : string) : reg option =
  match String.lowercase_ascii s with
  | "sp" -> Some reg_sp
  | "fp" -> Some reg_fp
  | s when String.length s >= 2 && s.[0] = 'r' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n >= 0 && n < n_regs -> Some n
      | Some _ -> err line "no such register '%s'" s
      | None -> None)
  | _ -> None

let parse_freg (s : string) : freg option =
  let s = String.lowercase_ascii s in
  if String.length s >= 2 && s.[0] = 'f' && s <> "fp" then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 && n < n_fregs -> Some n
    | _ -> None
  else None

let parse_vreg (s : string) : vreg option =
  let s = String.lowercase_ascii s in
  if String.length s >= 2 && s.[0] = 'v' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 && n < n_vregs -> Some n
    | _ -> None
  else None

let parse_num (s : string) : int64 option =
  let s = String.trim s in
  if s = "" then None
  else
    try Some (Int64.of_string s) (* handles 0x, negatives *)
    with _ -> None

(* Split "a+b-c" into signed terms, respecting a leading '-'. *)
let split_sum line (s : string) : (bool * string) list =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let neg = ref false in
  let flush () =
    let t = String.trim (Buffer.contents buf) in
    if t <> "" then parts := (!neg, t) :: !parts
    else if Buffer.length buf > 0 || !parts <> [] then err line "empty term in expression '%s'" s;
    Buffer.clear buf
  in
  String.iteri
    (fun i c ->
      match c with
      | '+' when Buffer.length buf > 0 || !parts <> [] ->
          flush ();
          neg := false
      | '-' when i > 0 && (Buffer.length buf > 0 || !parts <> []) && String.trim (Buffer.contents buf) <> "" ->
          flush ();
          neg := true
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !parts

let parse_iexpr line (s : string) : iexpr =
  split_sum line s
  |> List.map (fun (neg, t) ->
         match parse_num t with
         | Some n -> (neg, Num n)
         | None ->
             if String.length t > 0 && String.for_all is_ident_char t then
               (neg, Sym t)
             else err line "cannot parse term '%s'" t)

(* Memory operand: [base + index*scale + disp-terms] *)
type smem = {
  sm_base : reg option;
  sm_index : (reg * int) option;
  sm_disp : iexpr;
}

let parse_mem line (s : string) : smem =
  let inner = String.sub s 1 (String.length s - 2) in
  let terms = split_sum line inner in
  let base = ref None and index = ref None and disp = ref [] in
  List.iter
    (fun (neg, t) ->
      match String.index_opt t '*' with
      | Some i ->
          if neg then err line "negated index term in '%s'" s;
          let r = String.trim (String.sub t 0 i) in
          let sc = String.trim (String.sub t (i + 1) (String.length t - i - 1)) in
          let r =
            match parse_reg line r with
            | Some r -> r
            | None -> err line "bad index register '%s'" r
          in
          let sc =
            match int_of_string_opt sc with
            | Some (1 | 2 | 4 | 8) -> int_of_string sc
            | _ -> err line "bad scale '%s' (must be 1/2/4/8)" sc
          in
          if !index <> None then err line "two index terms in '%s'" s;
          index := Some (r, sc)
      | None -> (
          match parse_reg line t with
          | Some r when not neg ->
              if !base = None then base := Some r
              else if !index = None then index := Some (r, 1)
              else err line "too many registers in '%s'" s
          | Some _ -> err line "negated register in '%s'" s
          | None -> (
              match parse_num t with
              | Some n -> disp := (neg, Num n) :: !disp
              | None ->
                  if String.for_all is_ident_char t && t <> "" then
                    disp := (neg, Sym t) :: !disp
                  else err line "cannot parse '%s' in memory operand" t)))
    terms;
  { sm_base = !base; sm_index = !index; sm_disp = List.rev !disp }

(* ------------------------------------------------------------------ *)
(* Program items                                                        *)
(* ------------------------------------------------------------------ *)

type operand =
  | OReg of reg
  | OFreg of freg
  | OVreg of vreg
  | OMem of smem
  | OImm of iexpr
  | OFloat of float  (** a literal that only parses as a float (e.g. 1.5) *)

type section = Text | Data

type item =
  | It_insn of int * ((string -> int64 option) -> insn)
      (** line, resolver -> concrete instruction *)
  | It_bytes of Bytes.t
  | It_word of int * iexpr
  | It_f64 of float
  | It_space of int
  | It_align of int

(* length of an item given current address (align depends on position) *)
let item_len addr = function
  | It_insn (line, f) ->
      ignore line;
      Encode.length (f (fun _ -> Some 0L))
  | It_bytes b -> Bytes.length b
  | It_word _ -> 4
  | It_f64 _ -> 8
  | It_space n -> n
  | It_align a ->
      let m = Int64.to_int (Int64.rem addr (Int64.of_int a)) in
      if m = 0 then 0 else a - m

(* ------------------------------------------------------------------ *)
(* Line parsing                                                         *)
(* ------------------------------------------------------------------ *)

let strip_comment s =
  let cut = ref (String.length s) in
  let in_str = ref false in
  String.iteri
    (fun i c ->
      if c = '"' then in_str := not !in_str
      else if (c = ';' || c = '#') && (not !in_str) && i < !cut then cut := i)
    s;
  String.sub s 0 !cut

let parse_string_lit line (s : string) : string =
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '"' || s.[String.length s - 1] <> '"' then
    err line "expected string literal, got %s" s;
  let body = String.sub s 1 (String.length s - 2) in
  let buf = Buffer.create (String.length body) in
  let i = ref 0 in
  while !i < String.length body do
    (if body.[!i] = '\\' && !i + 1 < String.length body then begin
       (match body.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | '0' -> Buffer.add_char buf '\000'
       | '\\' -> Buffer.add_char buf '\\'
       | '"' -> Buffer.add_char buf '"'
       | c -> err line "unknown escape '\\%c'" c);
       incr i
     end
     else Buffer.add_char buf body.[!i]);
    incr i
  done;
  Buffer.contents buf

(* split operands on top-level commas (none occur inside brackets here,
   but be safe) *)
let split_operands (s : string) : string list =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  let in_str = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_str := not !in_str;
        Buffer.add_char buf c
      end
      else if !in_str then Buffer.add_char buf c
      else
        match c with
        | '[' ->
            incr depth;
            Buffer.add_char buf c
        | ']' ->
            decr depth;
            Buffer.add_char buf c
        | ',' when !depth = 0 ->
            parts := String.trim (Buffer.contents buf) :: !parts;
            Buffer.clear buf
        | c -> Buffer.add_char buf c)
    s;
  let last = String.trim (Buffer.contents buf) in
  if last <> "" || !parts <> [] then parts := last :: !parts;
  List.rev !parts |> List.filter (fun s -> s <> "")

let parse_operand line (s : string) : operand =
  if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']' then
    OMem (parse_mem line s)
  else
    match parse_reg line s with
    | Some r -> OReg r
    | None -> (
        match parse_freg s with
        | Some f -> OFreg f
        | None -> (
            match parse_vreg s with
            | Some v -> OVreg v
            | None -> (
                (* a float literal that is not a valid integer expression
                   (hex-float or decimal-point form) *)
                match (parse_num s, float_of_string_opt s) with
                | None, Some f -> OFloat f
                | _ -> OImm (parse_iexpr line s))))

(* ------------------------------------------------------------------ *)
(* Instruction building                                                 *)
(* ------------------------------------------------------------------ *)

let conds =
  [ ("eq", Ceq); ("ne", Cne); ("lt", Clts); ("le", Cles); ("gt", Cgts);
    ("ge", Cges); ("b", Cltu); ("be", Cleu); ("a", Cgtu); ("ae", Cgeu);
    ("s", Cs); ("ns", Cns); ("z", Ceq); ("nz", Cne) ]

let alus =
  [ ("add", ADD); ("sub", SUB); ("and", AND); ("or", OR); ("xor", XOR);
    ("shl", SHL); ("shr", SHR); ("sar", SAR); ("mul", MUL); ("divs", DIVS);
    ("divu", DIVU); ("div", DIVS) ]

let falus =
  [ ("fadd", FADD); ("fsub", FSUB); ("fmul", FMUL); ("fdiv", FDIV);
    ("fmin", FMIN); ("fmax", FMAX) ]

let fun1s = [ ("fsqrt", FSQRT); ("fneg", FNEG); ("fabs", FABS) ]

let valus =
  [ ("vand", VAND); ("vor", VOR); ("vxor", VXOR); ("vadd32", VADD32);
    ("vsub32", VSUB32); ("vcmpeq32", VCMPEQ32); ("vadd8", VADD8);
    ("vsub8", VSUB8) ]

let build_insn line (mn : string) (ops : operand list) :
    (string -> int64 option) -> insn =
  let imm e resolve = Support.Bits.trunc32 (eval_iexpr line (fun s -> resolve s) e) in
  let mem (m : smem) resolve : mem =
    { base = m.sm_base; index = m.sm_index; disp = imm m.sm_disp resolve }
  in
  let bad () = err line "bad operands for '%s'" mn in
  let const i = fun _ -> i in
  match (mn, ops) with
  | "nop", [] -> const Nop
  | "mov", [ OReg d; OReg s ] -> const (Mov (d, s))
  | ("mov" | "movi"), [ OReg d; OImm e ] -> fun r -> Movi (d, imm e r)
  | "lea", [ OReg d; OMem m ] -> fun r -> Lea (d, mem m r)
  | "ldb", [ OReg d; OMem m ] -> fun r -> Ld (W1, Zx, d, mem m r)
  | "ldbs", [ OReg d; OMem m ] -> fun r -> Ld (W1, Sx, d, mem m r)
  | "ldh", [ OReg d; OMem m ] -> fun r -> Ld (W2, Zx, d, mem m r)
  | "ldhs", [ OReg d; OMem m ] -> fun r -> Ld (W2, Sx, d, mem m r)
  | "ldw", [ OReg d; OMem m ] -> fun r -> Ld (W4, Zx, d, mem m r)
  | "stb", [ OMem m; OReg s ] -> fun r -> St (W1, mem m r, s)
  | "sth", [ OMem m; OReg s ] -> fun r -> St (W2, mem m r, s)
  | "stw", [ OMem m; OReg s ] -> fun r -> St (W4, mem m r, s)
  | "cmp", [ OReg a; OReg b ] -> const (Cmp (a, b))
  | ("cmp" | "cmpi"), [ OReg a; OImm e ] -> fun r -> Cmpi (a, imm e r)
  | "test", [ OReg a; OReg b ] -> const (Test (a, b))
  | "inc", [ OReg d ] -> const (Inc d)
  | "dec", [ OReg d ] -> const (Dec d)
  | "neg", [ OReg d ] -> const (Neg d)
  | "not", [ OReg d ] -> const (Not d)
  | ("jmp" | "jmp*" | "jmpr"), [ OReg s ] -> const (Jmpi s)
  | "jmp", [ OImm e ] -> fun r -> Jmp (imm e r)
  | ("call" | "call*" | "callr"), [ OReg s ] -> const (Calli s)
  | "call", [ OImm e ] -> fun r -> Call (imm e r)
  | "ret", [] -> const Ret
  | "push", [ OReg s ] -> const (Push s)
  | ("push" | "pushi"), [ OImm e ] -> fun r -> Pushi (imm e r)
  | "pop", [ OReg d ] -> const (Pop d)
  | "sysinfo", [] -> const Sysinfo
  | "syscall", [] -> const Syscall
  | "clreq", [] -> const Clreq
  | "ud", [] -> const Ud
  | "fld", [ OFreg d; OMem m ] -> fun r -> Fld (d, mem m r)
  | "fst", [ OMem m; OFreg s ] -> fun r -> Fst (mem m r, s)
  | "fmov", [ OFreg d; OFreg s ] -> const (Fmovr (d, s))
  | "fldi", [ OFreg d; OFloat f ] -> const (Fldi (d, f))
  | "fldi", [ OFreg d; OImm e ] ->
      (* integer literal promoted to float *)
      fun r -> Fldi (d, Int64.to_float (eval_iexpr line (fun s -> r s) e))
  | "fcmp", [ OFreg a; OFreg b ] -> const (Fcmp (a, b))
  | "fitod", [ OFreg d; OReg s ] -> const (Fitod (d, s))
  | "fdtoi", [ OReg d; OFreg s ] -> const (Fdtoi (d, s))
  | "vld", [ OVreg d; OMem m ] -> fun r -> Vld (d, mem m r)
  | "vst", [ OMem m; OVreg s ] -> fun r -> Vst (mem m r, s)
  | "vmov", [ OVreg d; OVreg s ] -> const (Vmovr (d, s))
  | "vsplat", [ OVreg d; OReg s ] -> const (Vsplat (d, s))
  | "vextr", [ OReg d; OVreg s; OImm e ] ->
      fun r -> Vextr (d, s, Int64.to_int (imm e r) land 3)
  | _ -> (
      (* table-driven families *)
      match List.assoc_opt mn alus with
      | Some op -> (
          match ops with
          | [ OReg d; OReg s ] -> const (Alu (op, d, s))
          | [ OReg d; OImm e ] -> fun r -> Alui (op, d, imm e r)
          | _ -> bad ())
      | None -> (
          (* "addi" etc *)
          let base =
            if String.length mn > 1 && mn.[String.length mn - 1] = 'i' then
              Some (String.sub mn 0 (String.length mn - 1))
            else None
          in
          match Option.bind base (fun b -> List.assoc_opt b alus) with
          | Some op -> (
              match ops with
              | [ OReg d; OImm e ] -> fun r -> Alui (op, d, imm e r)
              | _ -> bad ())
          | None -> (
              match List.assoc_opt mn falus with
              | Some op -> (
                  match ops with
                  | [ OFreg d; OFreg s ] -> const (Falu (op, d, s))
                  | _ -> bad ())
              | None -> (
                  match List.assoc_opt mn fun1s with
                  | Some op -> (
                      match ops with
                      | [ OFreg d; OFreg s ] -> const (Fun1 (op, d, s))
                      | [ OFreg d ] -> const (Fun1 (op, d, d))
                      | _ -> bad ())
                  | None -> (
                      match List.assoc_opt mn valus with
                      | Some op -> (
                          match ops with
                          | [ OVreg d; OVreg s ] -> const (Valu (op, d, s))
                          | _ -> bad ())
                      | None -> (
                          (* jCC / setCC *)
                          if String.length mn > 1 && mn.[0] = 'j' then
                            match
                              List.assoc_opt
                                (String.sub mn 1 (String.length mn - 1))
                                conds
                            with
                            | Some c -> (
                                match ops with
                                | [ OImm e ] -> fun r -> Jcc (c, imm e r)
                                | _ -> bad ())
                            | None -> err line "unknown mnemonic '%s'" mn
                          else if String.length mn > 3 && String.sub mn 0 3 = "set"
                          then
                            match
                              List.assoc_opt
                                (String.sub mn 3 (String.length mn - 3))
                                conds
                            with
                            | Some c -> (
                                match ops with
                                | [ OReg d ] -> const (Setcc (c, d))
                                | _ -> bad ())
                            | None -> err line "unknown mnemonic '%s'" mn
                          else err line "unknown mnemonic '%s'" mn))))))

(* ------------------------------------------------------------------ *)
(* Assembly driver                                                      *)
(* ------------------------------------------------------------------ *)

type pitem = { sect : section; it : item; line : int }

let parse_line lineno (sect : section ref) (raw : string) :
    ((string * section) list * pitem list) =
  let s = String.trim (strip_comment raw) in
  if s = "" then ([], [])
  else begin
    (* peel off leading labels *)
    let labels = ref [] in
    let rest = ref s in
    let continue = ref true in
    while !continue do
      match String.index_opt !rest ':' with
      | Some i when i > 0 && String.for_all is_ident_char (String.sub !rest 0 i)
        ->
          labels := String.sub !rest 0 i :: !labels;
          rest := String.trim (String.sub !rest (i + 1) (String.length !rest - i - 1))
      | _ -> continue := false
    done;
    let labels_with_sect () =
      List.rev_map (fun l -> (l, !sect)) !labels
    in
    let s = !rest in
    if s = "" then (labels_with_sect (), [])
    else
      let mn, args =
        match String.index_opt s ' ' with
        | Some i ->
            ( String.lowercase_ascii (String.sub s 0 i),
              String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
        | None -> (String.lowercase_ascii s, "")
      in
      let items =
        if String.length mn > 0 && mn.[0] = '.' then
          match mn with
          | ".text" ->
              sect := Text;
              []
          | ".data" ->
              sect := Data;
              []
          | ".global" | ".globl" | ".extern" -> []
          | ".word" | ".long" ->
              split_operands args
              |> List.map (fun a ->
                     { sect = !sect; it = It_word (lineno, parse_iexpr lineno a); line = lineno })
          | ".byte" ->
              let bs =
                split_operands args
                |> List.map (fun a ->
                       match parse_num a with
                       | Some n -> Char.chr (Int64.to_int n land 0xFF)
                       | None -> err lineno "bad .byte operand '%s'" a)
              in
              [ { sect = !sect; it = It_bytes (Bytes.of_string (String.init (List.length bs) (List.nth bs))); line = lineno } ]
          | ".ascii" ->
              [ { sect = !sect; it = It_bytes (Bytes.of_string (parse_string_lit lineno args)); line = lineno } ]
          | ".asciz" | ".string" ->
              [ { sect = !sect; it = It_bytes (Bytes.of_string (parse_string_lit lineno args ^ "\000")); line = lineno } ]
          | ".space" | ".skip" -> (
              match parse_num args with
              | Some n -> [ { sect = !sect; it = It_space (Int64.to_int n); line = lineno } ]
              | None -> err lineno "bad .space operand")
          | ".align" -> (
              match parse_num args with
              | Some n -> [ { sect = !sect; it = It_align (Int64.to_int n); line = lineno } ]
              | None -> err lineno "bad .align operand")
          | ".f64" | ".double" ->
              split_operands args
              |> List.map (fun a ->
                     match float_of_string_opt a with
                     | Some f -> { sect = !sect; it = It_f64 f; line = lineno }
                     | None -> err lineno "bad .f64 operand '%s'" a)
          | d -> err lineno "unknown directive '%s'" d
        else
          let ops = split_operands args |> List.map (parse_operand lineno) in
          [ { sect = !sect; it = It_insn (lineno, build_insn lineno mn ops); line = lineno } ]
      in
      (labels_with_sect (), items)
  end

(** Assemble [source] into an image. *)
let assemble ?(text_base = Image.default_text_base) (source : string) : Image.t =
  let sect = ref Text in
  let all : ((string * section) list * pitem list) list =
    String.split_on_char '\n' source
    |> List.mapi (fun i l -> parse_line (i + 1) sect l)
  in
  (* Layout pass: walk text items then data items, assigning addresses. *)
  let symbols : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  let place (which : section) (base : int64) : (pitem * int64) list * int64 =
    let addr = ref base in
    let placed = ref [] in
    List.iter
      (fun (labels, items) ->
        (* labels bind at the cursor of the section they were parsed in *)
        List.iter
          (fun (l, lsect) ->
            if lsect = which && not (Hashtbl.mem symbols l) then
              Hashtbl.replace symbols l !addr)
          labels;
        List.iter
          (fun it ->
            if it.sect = which then begin
              let len = item_len !addr it.it in
              placed := (it, !addr) :: !placed;
              addr := Int64.add !addr (Int64.of_int len)
            end)
          items)
      all;
    (List.rev !placed, !addr)
  in
  (* Two-phase: text first, then data at the page after text. *)
  let text_items, text_end = place Text text_base in
  let data_base = Image.round_page text_end in
  let data_items, data_end = place Data data_base in
  ignore data_end;
  let resolve s = Hashtbl.find_opt symbols s in
  let emit_items items base =
    let buf = Support.Buf.create ~capacity:1024 () in
    List.iter
      (fun (it, addr) ->
        (* pad up to addr *)
        let cur = Int64.add base (Int64.of_int (Support.Buf.length buf)) in
        for _ = 1 to Int64.to_int (Int64.sub addr cur) do
          Support.Buf.u8 buf 0
        done;
        match it.it with
        | It_insn (_, f) -> Encode.emit buf (f resolve)
        | It_bytes b -> Bytes.iter (fun c -> Support.Buf.u8 buf (Char.code c)) b
        | It_word (line, e) -> Support.Buf.u32 buf (eval_iexpr line resolve e)
        | It_f64 f -> Support.Buf.u64 buf (Support.Bits.bits_of_float f)
        | It_space n ->
            for _ = 1 to n do
              Support.Buf.u8 buf 0
            done
        | It_align _ -> ())
      items;
    Support.Buf.contents buf
  in
  let text = emit_items text_items text_base in
  let data = emit_items data_items data_base in
  let entry =
    match resolve "_start" with
    | Some e -> e
    | None -> (
        match resolve "main" with Some e -> e | None -> text_base)
  in
  {
    Image.text_addr = text_base;
    text;
    data_addr = data_base;
    data;
    bss_len = 0;
    entry;
    symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [];
  }
