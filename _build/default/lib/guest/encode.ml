(** VG32 binary instruction encoder.

    Encoding: one opcode byte followed by operand bytes.  Memory operands
    are a mode byte (bit7 = has base, bit6 = has index, bits 5:4 = log2
    scale, bits 2:0 = base register), an optional index-register byte, and
    a 32-bit displacement.  Instruction lengths therefore range from 1 to
    10 bytes — decoding is genuinely variable-length, like x86. *)

open Arch
open Support

let alu_index = function
  | ADD -> 0 | SUB -> 1 | AND -> 2 | OR -> 3 | XOR -> 4 | SHL -> 5
  | SHR -> 6 | SAR -> 7 | MUL -> 8 | DIVS -> 9 | DIVU -> 10

let falu_index = function
  | FADD -> 0 | FSUB -> 1 | FMUL -> 2 | FDIV -> 3 | FMIN -> 4 | FMAX -> 5

let fun1_index = function FSQRT -> 0 | FNEG -> 1 | FABS -> 2

let valu_index = function
  | VAND -> 0 | VOR -> 1 | VXOR -> 2 | VADD32 -> 3 | VSUB32 -> 4
  | VCMPEQ32 -> 5 | VADD8 -> 6 | VSUB8 -> 7

let log2_scale = function 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> invalid_arg "scale"

let emit_mem buf (m : mem) =
  let mode =
    (match m.base with Some b -> 0x80 lor b | None -> 0)
    lor (match m.index with Some (_, s) -> 0x40 lor (log2_scale s lsl 4) | None -> 0)
  in
  Buf.u8 buf mode;
  (match m.index with Some (i, _) -> Buf.u8 buf i | None -> ());
  Buf.u32 buf m.disp

let rr buf op d s =
  Buf.u8 buf op;
  Buf.u8 buf ((d lsl 4) lor s)

let r_imm buf op d imm =
  Buf.u8 buf op;
  Buf.u8 buf d;
  Buf.u32 buf imm

let r_mem buf op r m =
  Buf.u8 buf op;
  Buf.u8 buf r;
  emit_mem buf m

(** Append the encoding of [i] to [buf]. *)
let emit buf (i : insn) =
  match i with
  | Nop -> Buf.u8 buf 0x00
  | Mov (d, s) -> rr buf 0x01 d s
  | Movi (d, imm) -> r_imm buf 0x02 d imm
  | Lea (d, m) -> r_mem buf 0x03 d m
  | Ld (W1, Zx, d, m) -> r_mem buf 0x04 d m
  | Ld (W1, Sx, d, m) -> r_mem buf 0x05 d m
  | Ld (W2, Zx, d, m) -> r_mem buf 0x06 d m
  | Ld (W2, Sx, d, m) -> r_mem buf 0x07 d m
  | Ld (W4, _, d, m) -> r_mem buf 0x08 d m
  | St (W1, m, s) -> r_mem buf 0x09 s m
  | St (W2, m, s) -> r_mem buf 0x0A s m
  | St (W4, m, s) -> r_mem buf 0x0B s m
  | Alu (op, d, s) -> rr buf (0x10 + alu_index op) d s
  | Alui (op, d, imm) -> r_imm buf (0x20 + alu_index op) d imm
  | Cmp (a, b) -> rr buf 0x30 a b
  | Cmpi (a, imm) -> r_imm buf 0x31 a imm
  | Test (a, b) -> rr buf 0x32 a b
  | Inc d -> rr buf 0x33 d 0
  | Dec d -> rr buf 0x34 d 0
  | Neg d -> rr buf 0x35 d 0
  | Not d -> rr buf 0x36 d 0
  | Setcc (c, d) -> rr buf 0x37 (Flags.cond_to_int c) d
  | Jcc (c, target) -> r_imm buf 0x38 (Flags.cond_to_int c) target
  | Jmp target ->
      Buf.u8 buf 0x39;
      Buf.u32 buf target
  | Jmpi s -> rr buf 0x3A s 0
  | Call target ->
      Buf.u8 buf 0x3B;
      Buf.u32 buf target
  | Calli s -> rr buf 0x3C s 0
  | Ret -> Buf.u8 buf 0x3D
  | Push s -> rr buf 0x3E s 0
  | Pushi imm ->
      Buf.u8 buf 0x3F;
      Buf.u32 buf imm
  | Pop d -> rr buf 0x40 d 0
  | Sysinfo -> Buf.u8 buf 0x41
  | Syscall -> Buf.u8 buf 0x42
  | Clreq -> Buf.u8 buf 0x43
  | Fld (d, m) -> r_mem buf 0x50 d m
  | Fst (m, s) -> r_mem buf 0x51 s m
  | Fmovr (d, s) -> rr buf 0x52 d s
  | Fldi (d, x) ->
      Buf.u8 buf 0x53;
      Buf.u8 buf d;
      Buf.u64 buf (Bits.bits_of_float x)
  | Falu (op, d, s) -> rr buf (0x54 + falu_index op) d s
  | Fun1 (op, d, s) -> rr buf (0x5A + fun1_index op) d s
  | Fcmp (a, b) -> rr buf 0x5D a b
  | Fitod (d, s) -> rr buf 0x5E d s
  | Fdtoi (d, s) -> rr buf 0x5F d s
  | Vld (d, m) -> r_mem buf 0x60 d m
  | Vst (m, s) -> r_mem buf 0x61 s m
  | Vmovr (d, s) -> rr buf 0x62 d s
  | Valu (op, d, s) -> rr buf (0x63 + valu_index op) d s
  | Vsplat (d, s) -> rr buf 0x6B d s
  | Vextr (d, s, lane) ->
      rr buf 0x6C d s;
      Buf.u8 buf lane
  | Ud -> Buf.u8 buf 0xFF

(** Encode a single instruction to fresh bytes. *)
let encode (i : insn) : Bytes.t =
  let b = Buf.create ~capacity:12 () in
  emit b i;
  Buf.contents b

(** Encoded length of [i] in bytes. *)
let length (i : insn) = Bytes.length (encode i)
