(** Loadable guest program images (the analogue of an ELF executable).

    An image carries the text and data segments, the BSS size, the entry
    point and a symbol table.  [load] maps it into an address space the
    way Valgrind's own loader does at start-up (§3.3: the core "loads the
    client executable (text and data) ... then sets up the client's stack
    and data segment"), and reports the mapped ranges so the caller can
    fire [new_mem_startup] events (R5). *)

type t = {
  text_addr : int64;
  text : Bytes.t;
  data_addr : int64;
  data : Bytes.t;
  bss_len : int;  (** zero-initialised bytes following data *)
  entry : int64;
  symbols : (string * int64) list;  (** for stack traces / debug info *)
}

(** Default layout constants. *)
let default_text_base = 0x0001_0000L

let stack_top = 0xBF00_0000L
let stack_size = 1024 * 1024 (* 1MB client stack *)

(** A mapped range reported by [load]: base, length, and whether the
    loader considers its contents defined (text/data) or merely
    allocated (bss, stack). *)
type mapped = { m_base : int64; m_len : int; m_defined : bool; m_what : string }

let round_page x = Int64.logand (Int64.add x 4095L) (Int64.lognot 4095L)

(** Map [img] into [mem]; returns the initial [eip], initial [sp], the
    program break (end of bss, for the kernel's brk), and the list of
    mapped ranges. *)
let load (img : t) (mem : Aspace.t) :
    int64 * int64 * int64 * mapped list =
  let text_len = Bytes.length img.text in
  let data_len = Bytes.length img.data in
  Aspace.map mem ~addr:img.text_addr ~len:(max 1 text_len) ~perm:Aspace.perm_rx;
  (* write requires w perm: map rw, fill, then protect rx *)
  Aspace.protect mem ~addr:img.text_addr ~len:(max 1 text_len)
    ~perm:Aspace.perm_rwx;
  Aspace.write_bytes mem img.text_addr img.text;
  Aspace.protect mem ~addr:img.text_addr ~len:(max 1 text_len)
    ~perm:Aspace.perm_rx;
  if data_len > 0 then begin
    Aspace.map mem ~addr:img.data_addr ~len:data_len ~perm:Aspace.perm_rw;
    Aspace.write_bytes mem img.data_addr img.data
  end;
  let bss_base = Int64.add img.data_addr (Int64.of_int data_len) in
  if img.bss_len > 0 then
    Aspace.map ~zero:false mem ~addr:bss_base ~len:img.bss_len
      ~perm:Aspace.perm_rw;
  let brk = round_page (Int64.add bss_base (Int64.of_int img.bss_len)) in
  let stack_base = Int64.sub stack_top (Int64.of_int stack_size) in
  (* the stack is executable, as on pre-NX systems of the paper's era:
     GCC nested-function trampolines live there, which is exactly the
     self-modifying-code case Valgrind's hash checks exist for (§3.16) *)
  Aspace.map mem ~addr:stack_base ~len:stack_size ~perm:Aspace.perm_rwx;
  let sp = Int64.sub stack_top 64L (* small headroom, 16-aligned *) in
  let mapped =
    [
      { m_base = img.text_addr; m_len = text_len; m_defined = true; m_what = "text" };
      { m_base = img.data_addr; m_len = data_len; m_defined = true; m_what = "data" };
      { m_base = bss_base; m_len = img.bss_len; m_defined = false; m_what = "bss" };
      { m_base = stack_base; m_len = stack_size; m_defined = false; m_what = "stack" };
    ]
    |> List.filter (fun m -> m.m_len > 0)
  in
  (img.entry, sp, brk, mapped)

(** Find the symbol at or nearest below [addr], for stack traces. *)
let symbol_for (img : t) (addr : int64) : (string * int64) option =
  List.fold_left
    (fun best (name, a) ->
      if Int64.unsigned_compare a addr <= 0 then
        match best with
        | Some (_, ba) when Int64.unsigned_compare ba a >= 0 -> best
        | _ -> Some (name, a)
      else best)
    None img.symbols
