(** Memcheck in action: a client with the classic C memory bugs — use of
    uninitialised values (including one laundered through several copies
    and arithmetic, which only bit-precise definedness tracking pins on
    the *use* rather than the copies), a heap overrun, a use after free,
    and a leak.  Each produces exactly one deduplicated error report.

    Run with: [dune exec examples/memcheck_finds_bugs.exe] *)

let buggy_client =
  {|
int process(int *data, int n) {
  int i; int sum;
  sum = 0;
  for (i = 0; i <= n; i++) {       /* BUG: off-by-one heap read */
    sum = sum + data[i];
  }
  return sum;
}

int main() {
  int *data;
  int uninit[4];
  int laundered;
  char *msg;
  int verdict;

  /* bug 1: branch on uninitialised data (after laundering it through
     copies and additions — copying is fine, *using* is the error) */
  laundered = uninit[2] + 1;
  laundered = laundered * 2;
  if (laundered > 10) { verdict = 1; } else { verdict = 2; }

  /* bug 2: heap block overrun (read one past the end) */
  data = (int*)malloc(8 * sizeof(int));
  for (verdict = 0; verdict < 8; verdict++) { data[verdict] = verdict; }
  verdict = process(data, 8);

  /* bug 3: use after free */
  free((char*)data);
  verdict = verdict + data[0];

  /* bug 4: leak (never freed, pointer lost) */
  msg = malloc(64);
  strcpy(msg, "this block is lost");
  msg = (char*)0;

  print_str("client finished (verdict ");
  print_int(verdict * 0);
  print_str(")\n");
  return 0;
}
|}

let () =
  print_endline "Running a deliberately buggy client under Memcheck:\n";
  let img = Minicc.Driver.compile buggy_client in
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited n -> Printf.printf "client exit code: %d\n\n" n
  | _ -> print_endline "unexpected termination\n");
  print_string "client stdout:\n";
  print_string (Vg_core.Session.client_stdout s);
  print_string "\nMemcheck output:\n";
  print_string (Vg_core.Session.tool_output s);
  (match Tools.Memcheck.(!last_state) with
  | Some st ->
      let m = Tools.Memcheck.stats_of st in
      Printf.printf
        "\nheap summary: %d allocs, %d frees, %Ld bytes allocated, %d \
         blocks live at exit\n"
        m.mc_allocs m.mc_frees m.mc_bytes m.mc_live_blocks
  | None -> ());
  (* the same client under --track-origins: the uninit report now names
     the allocation the junk value came from *)
  print_endline
    "\n----------------------------------------------------------------\n\
     The same client under memcheck-origins (--track-origins):\n";
  let s2 = Vg_core.Session.create ~tool:Tools.Memcheck.tool_origins img in
  (match Vg_core.Session.run s2 with
  | Vg_core.Session.Exited _ -> ()
  | _ -> print_endline "unexpected termination");
  (* print just the uninitialised-value reports, which now carry origins *)
  String.split_on_char '\n' (Vg_core.Session.tool_output s2)
  |> List.iter (fun l ->
         let has frag =
           let n = String.length frag in
           let rec go i =
             i + n <= String.length l && (String.sub l i n = frag || go (i + 1))
           in
           go 0
         in
         if has "Uninit" || has "created by" then print_endline l)
