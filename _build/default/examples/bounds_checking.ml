(** Annelid in action (paper §1.2): bounds checking entire programs
    without recompiling.  The client walks off the end of a heap array
    inside a helper function three calls deep — the segment tag travels
    with the pointer through calls and arithmetic, so the bad access is
    caught exactly where it happens, with the block identified.

    Run with: [dune exec examples/bounds_checking.exe] *)

let client =
  {|
int sum_first(int *data, int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) { s = s + data[i]; }
  return s;
}

int *make_table(int n) {
  int *t; int i;
  t = (int*)malloc(n * sizeof(int));
  for (i = 0; i < n; i++) { t[i] = i * i; }
  return t;
}

int main() {
  int *t; int good; int bad;
  t = make_table(16);
  good = sum_first(t, 16);        /* fine */
  bad = sum_first(t + 8, 16);     /* runs 8 past the end: 8 bad reads */
  free((char*)t);
  print_str("good="); print_int(good);
  print_str(" bad="); print_int(bad); print_str("\n");
  return 0;
}
|}

let () =
  print_endline "Running under Annelid (pointer-segment bounds checking):\n";
  let img = Minicc.Driver.compile client in
  let s = Vg_core.Session.create ~tool:Tools.Annelid.tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited n -> Printf.printf "client exit code: %d\n\n" n
  | _ -> print_endline "unexpected termination");
  print_string "client stdout:\n";
  print_string (Vg_core.Session.client_stdout s);
  print_string "\nAnnelid output:\n";
  print_string (Vg_core.Session.tool_output s)
