(** Cachegrind in action: the same matrix multiplication in naive
    (row×column) and transposed (cache-friendly) form.  The instruction
    counts are nearly identical; the D1 miss rates are not — which is
    the whole point of a cache profiler.

    Run with: [dune exec examples/cache_profile.exe] *)

let client transposed =
  Printf.sprintf
    {|
double a[64*64]; double b[64*64]; double c[64*64]; double bt[64*64];
int main() {
  int i; int j; int k; double acc;
  srand(2);
  for (i = 0; i < 4096; i++) {
    a[i] = (double)(rand() %% 100) / 100.0;
    b[i] = (double)(rand() %% 100) / 100.0;
  }
  if (%d) {
    /* transpose b first: unit-stride inner loop */
    for (i = 0; i < 64; i++) {
      for (j = 0; j < 64; j++) { bt[j*64+i] = b[i*64+j]; }
    }
    for (i = 0; i < 64; i++) {
      for (j = 0; j < 64; j++) {
        acc = 0.0;
        for (k = 0; k < 64; k++) { acc = acc + a[i*64+k] * bt[j*64+k]; }
        c[i*64+j] = acc;
      }
    }
  } else {
    /* naive: b walked with stride 64 doubles = 512 bytes *)  */
    for (i = 0; i < 64; i++) {
      for (j = 0; j < 64; j++) {
        acc = 0.0;
        for (k = 0; k < 64; k++) { acc = acc + a[i*64+k] * b[k*64+j]; }
        c[i*64+j] = acc;
      }
    }
  }
  print_str("checksum: "); print_double(c[64*32+32]); print_str("\n");
  return 0;
}
|}
    (if transposed then 1 else 0)

let run_one label transposed =
  (* a small D1 makes the stride effect visible at this matrix size *)
  let img = Minicc.Driver.compile (client transposed) in
  let s = Vg_core.Session.create ~tool:Tools.Cachegrind.tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | _ -> print_endline "client failed");
  Printf.printf "--- %s ---\n" label;
  print_string (Vg_core.Session.client_stdout s);
  print_string (Vg_core.Session.tool_output s);
  print_newline ()

let () =
  print_endline
    "64x64 double matrix multiply, naive vs transposed, under Cachegrind:\n";
  run_one "naive (stride-64 inner loop over b)" false;
  run_one "transposed (unit-stride inner loops)" true;
  print_endline
    "Same arithmetic, same instruction counts — very different D1 read\n\
     miss rates.  This is the analysis Cachegrind exists for.";
  match Tools.Cachegrind.(!the_state) with
  | Some st ->
      let hot = Tools.Cachegrind.hottest st 3 in
      print_endline "\nhottest PCs of the last run (annotate-style):";
      List.iter
        (fun (pc, c) ->
          Printf.printf "  0x%LX: %Ld instructions, %Ld reads, %Ld writes\n"
            pc c.Tools.Cachegrind.c_ir c.c_dr c.c_dw)
        hot
  | None -> ()
