(** Redux in action (paper §1.2): build the dynamic dataflow graph of a
    small computation and print, in Graphviz DOT, every prior operation
    that contributed to the program's result.

    Run with: [dune exec examples/dataflow_graph.exe]
    (pipe the DOT block through `dot -Tpng` to see the picture) *)

let client =
  {|
int triple(int x) { return x + x + x; }
int main() {
  int a; int b; int c;
  a = 6;
  b = triple(a);        /* 18 */
  c = b * 2 + a;        /* 42 */
  return c;
}
|}

let () =
  print_endline "Running under Redux (every operation becomes a DAG node):\n";
  let img = Minicc.Driver.compile client in
  let s = Vg_core.Session.create ~tool:Tools.Redux.tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited n -> Printf.printf "client exit code: %d\n\n" n
  | _ -> print_endline "unexpected termination");
  print_string (Vg_core.Session.tool_output s);
  (match Tools.Redux.(!the_state) with
  | Some st ->
      Printf.printf
        "\n(The full DAG has %d nodes — the paper's verdict that Redux is\n\
         \"not practical for anything more than toy programs\" reproduces:\n\
         every guest operation paid a helper call.)\n"
        (Support.Vec.length st.nodes)
  | None -> ())
