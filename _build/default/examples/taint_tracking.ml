(** Taint tracking (the TaintCheck use case, paper §1.2): untrusted
    "network" input is tainted at its source; the tool tracks it through
    parsing arithmetic, and raises the alarm when a value derived from
    it reaches an indirect jump — the control-flow-hijack signature.

    The client below is a little bytecode machine whose dispatch is an
    indirect jump through a function-pointer table; a malicious packet
    smuggles an out-of-range opcode.

    Run with: [dune exec examples/taint_tracking.exe] *)

let client =
  {|
int op_add(int a) { return a + 1; }
int op_dbl(int a) { return a * 2; }
int op_neg(int a) { return -a; }

int table[3];

int dispatch(int op, int arg) {
  int f;
  f = table[op];                 /* op comes straight from the packet! */
  /* indirect call through a tainted "function pointer" *)  */
  return ((int (*)(int))f)(arg);
}

int main() {
  char packet[8];
  int n; int op; int arg; int r;
  table[0] = (int)&op_add;
  table[1] = (int)&op_dbl;
  table[2] = (int)&op_neg;
  /* read the "network packet" from stdin and taint it at the source,
     the way TaintCheck taints recv() data *)
  n = read(0, packet, 8);
  vg_taint_mem(packet, n);
  op = (int)packet[0];
  arg = (int)packet[1];
  r = dispatch(op, arg);
  print_str("dispatch result: "); print_int(r); print_str("\n");
  return 0;
}
|}

(* mini-C has no function pointers; express the dispatch in assembly
   instead — the interesting part is the indirect jump anyway *)
let client_asm =
  {|
int op_add(int a) { return a + 1; }
int op_dbl(int a) { return a * 2; }
int op_neg(int a) { return -a; }

int table[4];

int call_indirect(int f, int a);   /* implemented in assembly below */

int get_handler(int op) { return table[op]; }

int main() {
  char packet[8];
  int n; int op; int arg; int r; int h;
  table[0] = (int)&op_add;
  table[1] = (int)&op_dbl;
  table[2] = (int)&op_neg;
  table[3] = 0;
  n = read(0, packet, 8);
  vg_taint_mem(packet, n);
  op = (int)packet[0];             /* tainted opcode */
  arg = (int)packet[1];            /* tainted argument */
  if (op < 3) {
    h = get_handler(op);           /* table lookup: target untainted */
  } else {
    /* "extension opcodes": the packet carries the handler address —
       the return-to-libc pattern TaintCheck exists to catch */
    h = (int)packet[4] + (int)packet[5] * 256
        + (int)packet[6] * 65536 + (int)packet[7] * 16777216;
  }
  r = call_indirect(h, arg);       /* indirect call: the sink */
  print_str("dispatch result: "); print_int(r); print_str("\n");
  if (vg_check_taint((char*)&r, 4)) { print_str("(result is tainted)\n"); }
  return 0;
}
|}

let () =
  ignore client;
  print_endline
    "A bytecode interpreter dispatches through a table indexed by a byte\n\
     read from the 'network'.  Taintgrind taints the packet at its source\n\
     and flags the tainted indirect control transfer.\n";
  (* call_indirect is 4 lines of assembly appended after compilation *)
  let asm_extra =
    {|
        .text
call_indirect:
        push fp
        mov fp, sp
        ldw r1, [fp+12]     ; arg
        push r1
        ldw r0, [fp+8]      ; target
        call* r0
        addi sp, 4
        mov sp, fp
        pop fp
        ret
|}
  in
  let asm = Minicc.Driver.to_asm client_asm in
  let img = Guest.Asm.assemble (asm ^ asm_extra) in
  let run label packet =
    Printf.printf "--- %s ---\n" label;
    let s = Vg_core.Session.create ~tool:Tools.Taintgrind.tool img in
    Kernel.set_stdin s.kern packet;
    (match Vg_core.Session.run s with
    | Vg_core.Session.Exited n -> Printf.printf "client exit: %d\n" n
    | Vg_core.Session.Fatal_signal sg ->
        Printf.printf "client killed by %s (control was hijacked)\n"
          (Kernel.Sig.name sg)
    | _ -> print_endline "unexpected termination");
    print_string (Vg_core.Session.client_stdout s);
    print_string (Vg_core.Session.tool_output s);
    print_newline ()
  in
  (* benign packet: opcode 1 (op_dbl), argument 5 *)
  run "benign packet (opcode 1)" "\001\005xx\000\000\000\000";
  (* malicious packet: "extension opcode" 9 smuggles a handler address
     (0x00000040: unmapped) in bytes 4..7 *)
  run "malicious packet (attacker-supplied handler address)"
    "\009\005xx\064\000\000\000"
