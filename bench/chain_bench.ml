(** Translation-chaining benchmark (§3.9 extension).

    Runs a set of loop-heavy workloads under Nulgrind twice — chaining on
    (the default) and off (the paper's configuration) — and reports the
    reduction in dispatcher entries and modelled cycles, checking that
    client output is bit-identical either way.

    Doubles as the CI bench-regression gate: [write_json] dumps the
    deterministic metrics to a flat JSON file and [check] compares a
    fresh run against the committed baseline, failing on any cycle
    metric that regresses by more than 10%. *)

let suite = [ "mcf"; "swim"; "mgrid"; "gzip" ]

type row = {
  b_name : string;
  b_entries_on : int64;  (** dispatcher entries, chaining on *)
  b_entries_off : int64;
  b_cycles_on : int64;  (** modelled total cycles, chaining on *)
  b_cycles_off : int64;
  b_chained : int64;  (** transfers that bypassed the dispatcher *)
  b_outputs_equal : bool;
  b_jit_phases : int64 array;
      (** per-phase JIT cycles (chaining on): eight entries summing to
          that run's total JIT cycles *)
  b_hit_rate_pm_on : int64;  (** dispatcher hit rate, per mille *)
  b_hit_rate_pm_off : int64;
}

(* Hit rates are exported as integer per-mille so the gate's flat
   int64 JSON keeps carrying them; 1000ths are precise enough to catch
   a real locality regression. *)
let per_mille (f : float) : int64 = Int64.of_float (f *. 1000.0)

let run_one ?(scale = 1) (name : string) : row option =
  match Workloads.find name with
  | None ->
      Printf.printf "!! unknown workload %s\n" name;
      None
  | Some w ->
      let img = Workloads.compile ~scale w in
      let with_chaining c =
        Harness.run_tool
          ~options:{ Vg_core.Session.default_options with chaining = c }
          Vg_core.Tool.nulgrind img
      in
      let on = with_chaining true in
      let off = with_chaining false in
      Some
        {
          b_name = name;
          b_entries_on = on.tr_stats.st_dispatch_entries;
          b_entries_off = off.tr_stats.st_dispatch_entries;
          b_cycles_on = on.tr_cycles;
          b_cycles_off = off.tr_cycles;
          b_chained = on.tr_stats.st_chained;
          b_outputs_equal = on.tr_stdout = off.tr_stdout;
          b_jit_phases = on.tr_stats.st_jit_phase_cycles;
          b_hit_rate_pm_on = per_mille on.tr_stats.st_dispatch_hit_rate;
          b_hit_rate_pm_off = per_mille off.tr_stats.st_dispatch_hit_rate;
        }

let rows ?scale () : row list = List.filter_map (run_one ?scale) suite

let pct_less (now : int64) (before : int64) : float =
  if before = 0L then 0.0
  else 100.0 *. (1.0 -. (Int64.to_float now /. Int64.to_float before))

let run ?scale () =
  Harness.section
    "Translation chaining: dispatcher entries and cycles, on vs off";
  Printf.printf "%-9s %12s %12s %7s %13s %13s %6s %5s\n" "program"
    "entries(on)" "entries(off)" "cut%" "cycles(on)" "cycles(off)" "cut%"
    "out=";
  Harness.hr ();
  let rs = rows ?scale () in
  List.iter
    (fun r ->
      Printf.printf "%-9s %12Ld %12Ld %6.1f%% %13Ld %13Ld %5.1f%% %5b\n%!"
        r.b_name r.b_entries_on r.b_entries_off
        (pct_less r.b_entries_on r.b_entries_off)
        r.b_cycles_on r.b_cycles_off
        (pct_less r.b_cycles_on r.b_cycles_off)
        r.b_outputs_equal)
    rs;
  Harness.hr ();
  let sum f = List.fold_left (fun a r -> Int64.add a (f r)) 0L rs in
  let eon = sum (fun r -> r.b_entries_on)
  and eoff = sum (fun r -> r.b_entries_off) in
  Printf.printf "%-9s %12Ld %12Ld %6.1f%%  (target: >= 30%% fewer entries)\n"
    "total" eon eoff (pct_less eon eoff);
  if pct_less eon eoff < 30.0 then
    print_endline "!! chaining cut dispatcher entries by less than 30%";
  if not (List.for_all (fun r -> r.b_outputs_equal) rs) then
    print_endline "!! chained and unchained outputs differ"

(* ------------------------------------------------------------------ *)
(* The CI regression gate                                               *)
(* ------------------------------------------------------------------ *)

(* Flat JSON, one "program.metric" per line: trivially diffable and
   parseable without a JSON library. *)
let metrics_of_row (r : row) : (string * int64) list =
  [
    (r.b_name ^ ".entries_on", r.b_entries_on);
    (r.b_name ^ ".entries_off", r.b_entries_off);
    (r.b_name ^ ".cycles_on", r.b_cycles_on);
    (r.b_name ^ ".cycles_off", r.b_cycles_off);
    (r.b_name ^ ".chained", r.b_chained);
    (r.b_name ^ ".outputs_equal", if r.b_outputs_equal then 1L else 0L);
  ]
  (* per-phase JIT cycles: "cycles_" prefixed so the gate's 10%
     cycle tolerance applies to each phase individually *)
  @ List.init (Array.length r.b_jit_phases) (fun i ->
        (Printf.sprintf "%s.cycles_jit_p%d" r.b_name (i + 1), r.b_jit_phases.(i)))
  @ [
      (r.b_name ^ ".hit_rate_pm_on", r.b_hit_rate_pm_on);
      (r.b_name ^ ".hit_rate_pm_off", r.b_hit_rate_pm_off);
    ]

let n_phases = 8

let all_metrics (rs : row list) : (string * int64) list =
  let sum f = List.fold_left (fun a r -> Int64.add a (f r)) 0L rs in
  List.concat_map metrics_of_row rs
  @ [
      ("total.entries_on", sum (fun r -> r.b_entries_on));
      ("total.entries_off", sum (fun r -> r.b_entries_off));
      ("total.cycles_on", sum (fun r -> r.b_cycles_on));
      ("total.cycles_off", sum (fun r -> r.b_cycles_off));
      ( "total.outputs_equal",
        if List.for_all (fun r -> r.b_outputs_equal) rs then 1L else 0L );
    ]
  @ List.init n_phases (fun i ->
        ( Printf.sprintf "total.cycles_jit_p%d" (i + 1),
          sum (fun r ->
              if i < Array.length r.b_jit_phases then r.b_jit_phases.(i)
              else 0L) ))

(* [extra] lets the caller fold further metric families (the tier
   matrix) into the same gate file, so one baseline carries all of
   them. *)
let write_json ~(path : string) ?scale ?(extra : (string * int64) list = [])
    () =
  let ms = all_metrics (rows ?scale ()) @ extra in
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  \"%s\": %Ld%s\n" k v
        (if i = List.length ms - 1 then "" else ","))
    ms;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %d metrics to %s\n" (List.length ms) path

(* Parse the flat format back: lines of the shape  "key": 123[,] *)
let read_json (path : string) : (string * int64) list =
  let ic = open_in path in
  let out = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       match String.index_opt line '"' with
       | Some 0 -> (
           match String.index_from_opt line 1 '"' with
           | Some close -> (
               let key = String.sub line 1 (close - 1) in
               match String.index_from_opt line close ':' with
               | Some colon ->
                   let rest =
                     String.sub line (colon + 1)
                       (String.length line - colon - 1)
                   in
                   let num =
                     String.trim
                       (match String.index_opt rest ',' with
                       | Some c -> String.sub rest 0 c
                       | None -> rest)
                   in
                   (match Int64.of_string_opt num with
                   | Some v -> out := (key, v) :: !out
                   | None -> ())
               | None -> ())
           | None -> ())
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

(** Compare [current] against [baseline]; any [*.cycles_*] metric
    (totals and per-JIT-phase alike) more than 10% above its baseline
    value, a [*.hit_rate_pm_*] metric drifting more than 20 per mille
    (2 percentage points) either way, or a current
    [*.outputs_equal = 0], fails the gate.  Exits non-zero on failure so
    CI can gate on it. *)
let check ~(baseline : string) ~(current : string) =
  let read_or_die path =
    try read_json path
    with Sys_error m ->
      Printf.printf "bench gate FAILED: cannot read %s (%s)\n" path m;
      exit 1
  in
  let base = read_or_die baseline and cur = read_or_die current in
  if base = [] then failwith ("no metrics parsed from " ^ baseline);
  if cur = [] then failwith ("no metrics parsed from " ^ current);
  let failures = ref 0 in
  let is_cycles k =
    match String.index_opt k '.' with
    | Some d ->
        String.length k > d + 7 && String.sub k (d + 1) 7 = "cycles_"
    | None -> false
  in
  let is_hit_rate k =
    match String.index_opt k '.' with
    | Some d ->
        String.length k > d + 12 && String.sub k (d + 1) 12 = "hit_rate_pm_"
    | None -> false
  in
  let hit_rate_pm_tolerance = 20L in
  List.iter
    (fun (k, v) ->
      if is_hit_rate k then
        match List.assoc_opt k base with
        | None -> Printf.printf "?? %s: no baseline (new metric)\n" k
        | Some b ->
            let drift = Int64.abs (Int64.sub v b) in
            if drift > hit_rate_pm_tolerance then begin
              incr failures;
              Printf.printf
                "!! %s drifted: %Ld -> %Ld per mille (>%Ld)\n" k b v
                hit_rate_pm_tolerance
            end
            else Printf.printf "ok %s: %Ld vs baseline %Ld\n" k v b
      else if is_cycles k then
        match List.assoc_opt k base with
        | None -> Printf.printf "?? %s: no baseline (new metric)\n" k
        | Some b ->
            let limit =
              Int64.of_float (Int64.to_float b *. 1.10)
            in
            if Int64.unsigned_compare v limit > 0 then begin
              incr failures;
              Printf.printf "!! %s regressed: %Ld -> %Ld (>+10%%)\n" k b v
            end
            else Printf.printf "ok %s: %Ld vs baseline %Ld\n" k v b
      else if
        String.length k >= 13
        && String.sub k (String.length k - 13) 13 = "outputs_equal"
        && v = 0L
      then begin
        incr failures;
        Printf.printf "!! %s: chained and unchained outputs differ\n" k
      end)
    cur;
  List.iter
    (fun (k, _) ->
      if is_cycles k && List.assoc_opt k cur = None then begin
        incr failures;
        Printf.printf "!! %s: present in baseline but missing now\n" k
      end)
    base;
  if !failures > 0 then begin
    Printf.printf "bench gate FAILED: %d regression(s)\n" !failures;
    exit 1
  end
  else print_endline "bench gate passed"
