(** AOT-seeding benchmark: the cold-start gate behind [aotcheck].

    Runs each chaining-suite workload under Nulgrind twice — unseeded
    (the default lazy JIT) and with [--aot-seed] (every statically
    discovered block pre-translated before the client starts) — and
    reports the JIT-cycle split.  The claim the gate enforces: with
    seeding, the {e runtime} JIT share (total JIT cycles minus the AOT
    seeding share) lands strictly below the unseeded run's JIT cycles,
    because cold-block translation was paid up front; client output must
    be identical and the soundness oracle must count zero
    [static.cfg_miss].

    [metrics] folds into the same flat JSON as the chaining and tier
    gates ({!Chain_bench.write_json}), so one baseline carries all
    three. *)

let unseeded_options = Vg_core.Session.default_options

let seeded_options =
  { Vg_core.Session.default_options with scan = true; aot_seed = true }

type row = {
  a_name : string;
  a_jit_unseeded : int64;  (** JIT cycles, lazy translation *)
  a_jit_seed_total : int64;  (** JIT cycles with seeding (AOT included) *)
  a_jit_aot : int64;  (** the AOT seeding share of the above *)
  a_seeded : int;  (** blocks pre-translated *)
  a_failed : int;  (** seed attempts the JIT rejected *)
  a_cfg_checked : int;  (** soundness-oracle checks *)
  a_cfg_miss : int;  (** executed starts the scan never found *)
  a_outputs_equal : bool;
}

(* runtime JIT share of the seeded run: what translation still happened
   while the client was running *)
let runtime_jit (r : row) : int64 = Int64.sub r.a_jit_seed_total r.a_jit_aot

let run_one ?(scale = 1) (name : string) : row option =
  match Workloads.find name with
  | None ->
      Printf.printf "!! unknown workload %s\n" name;
      None
  | Some w ->
      let img = Workloads.compile ~scale w in
      let run options = Harness.run_tool ~options Vg_core.Tool.nulgrind img in
      let plain = run unseeded_options in
      let seeded = run seeded_options in
      Some
        {
          a_name = name;
          a_jit_unseeded = plain.tr_stats.st_jit_cycles;
          a_jit_seed_total = seeded.tr_stats.st_jit_cycles;
          a_jit_aot = seeded.tr_stats.st_aot_cycles;
          a_seeded = seeded.tr_stats.st_aot_seeded;
          a_failed = seeded.tr_stats.st_aot_failed;
          a_cfg_checked = seeded.tr_stats.st_cfg_checked;
          a_cfg_miss = seeded.tr_stats.st_cfg_miss;
          a_outputs_equal = seeded.tr_stdout = plain.tr_stdout;
        }

let rows ?scale () : row list =
  List.filter_map (run_one ?scale) Chain_bench.suite

let pct_less (now : int64) (before : int64) : float =
  if before = 0L then 0.0
  else 100.0 *. (1.0 -. (Int64.to_float now /. Int64.to_float before))

(** The human-readable AOT table. *)
let run ?scale () =
  Harness.section
    "AOT seeding: cold-start JIT cycles (unseeded vs seeded runtime share)";
  Printf.printf "%-9s %11s %11s %11s %6s %6s %6s %5s %5s\n" "program"
    "jit(lazy)" "jit(rt)" "jit(aot)" "save%" "seed" "check" "miss" "out=";
  Harness.hr ();
  let rs = rows ?scale () in
  List.iter
    (fun r ->
      Printf.printf "%-9s %11Ld %11Ld %11Ld %5.1f%% %6d %6d %5d %5b\n%!"
        r.a_name r.a_jit_unseeded (runtime_jit r) r.a_jit_aot
        (pct_less (runtime_jit r) r.a_jit_unseeded)
        r.a_seeded r.a_cfg_checked r.a_cfg_miss r.a_outputs_equal)
    rs;
  Harness.hr ();
  let sum f = List.fold_left (fun a r -> Int64.add a (f r)) 0L rs in
  let rt = sum runtime_jit and lazy_ = sum (fun r -> r.a_jit_unseeded) in
  Printf.printf
    "%-9s %11Ld %11Ld  (gate: runtime < lazy, outputs equal, 0 miss)\n"
    "total" lazy_ rt;
  if Int64.unsigned_compare rt lazy_ >= 0 then
    print_endline "!! seeded runtime JIT cycles did not beat the lazy JIT";
  if List.exists (fun r -> r.a_cfg_miss > 0) rs then
    print_endline "!! soundness oracle counted misses";
  if not (List.for_all (fun r -> r.a_outputs_equal) rs) then
    print_endline "!! AOT seeding changed client output"

(* Metrics for the flat JSON gate file.  "cycles_" keys get the gate's
   10% regression tolerance; the exact counts (seeded blocks, oracle
   checks/misses) ride along un-gated for the aotcheck gate below. *)
let metrics_of_row (r : row) : (string * int64) list =
  [
    (r.a_name ^ ".cycles_jit_unseeded", r.a_jit_unseeded);
    (r.a_name ^ ".cycles_jit_seed_runtime", runtime_jit r);
    (r.a_name ^ ".cycles_jit_aot", r.a_jit_aot);
    (r.a_name ^ ".aot_seeded", Int64.of_int r.a_seeded);
    (r.a_name ^ ".aot_failed", Int64.of_int r.a_failed);
    (r.a_name ^ ".cfg_checked", Int64.of_int r.a_cfg_checked);
    (r.a_name ^ ".cfg_miss", Int64.of_int r.a_cfg_miss);
    (r.a_name ^ ".aot_outputs_equal", if r.a_outputs_equal then 1L else 0L);
  ]

let metrics ?scale () : (string * int64) list =
  let rs = rows ?scale () in
  let sum f = List.fold_left (fun a r -> Int64.add a (f r)) 0L rs in
  List.concat_map metrics_of_row rs
  @ [
      ("total.cycles_jit_unseeded", sum (fun r -> r.a_jit_unseeded));
      ("total.cycles_jit_seed_runtime", sum runtime_jit);
      ("total.cycles_jit_aot", sum (fun r -> r.a_jit_aot));
      ("total.cfg_miss", sum (fun r -> Int64.of_int r.a_cfg_miss));
      ( "total.aot_outputs_equal",
        if List.for_all (fun r -> r.a_outputs_equal) rs then 1L else 0L );
    ]

(** The AOT gate, over an already-written metrics file: the seeded
    runtime JIT share must land strictly below the unseeded JIT cycles
    (per workload and in total), the soundness oracle must have counted
    zero misses, and outputs must be equal.  Exits non-zero on failure
    so CI can gate on it. *)
let check_current ~(current : string) =
  let cur = Chain_bench.read_json current in
  if cur = [] then begin
    Printf.printf "aot gate FAILED: no metrics parsed from %s\n" current;
    exit 1
  end;
  let failures = ref 0 in
  let suffix_is k s =
    let n = String.length s in
    String.length k >= n && String.sub k (String.length k - n) n = s
  in
  List.iter
    (fun (k, v) ->
      if suffix_is k ".cycles_jit_unseeded" then begin
        let prefix =
          String.sub k 0
            (String.length k - String.length ".cycles_jit_unseeded")
        in
        match List.assoc_opt (prefix ^ ".cycles_jit_seed_runtime") cur with
        | None ->
            incr failures;
            Printf.printf "!! %s: no matching seed_runtime metric\n" k
        | Some rt ->
            if Int64.unsigned_compare rt v >= 0 then begin
              incr failures;
              Printf.printf
                "!! %s: seeded runtime JIT %Ld >= unseeded %Ld\n" prefix rt v
            end
            else
              Printf.printf "ok %s: runtime %Ld < unseeded %Ld (-%.1f%%)\n"
                prefix rt v (pct_less rt v)
      end
      else if suffix_is k ".cfg_miss" && v <> 0L then begin
        incr failures;
        Printf.printf "!! %s: soundness oracle counted %Ld misses\n" k v
      end
      else if suffix_is k "aot_outputs_equal" && v = 0L then begin
        incr failures;
        Printf.printf "!! %s: AOT seeding changed client output\n" k
      end)
    cur;
  if !failures > 0 then begin
    Printf.printf "aot gate FAILED: %d problem(s)\n" !failures;
    exit 1
  end
  else print_endline "aot gate passed"
