(** Tiered-JIT benchmark: the tier-matrix behind the CI bench gate.

    Runs each chaining-suite workload under Nulgrind in three modes —
    tiered (the default: tier-0 quick translation, hotness promotion and
    trace superblocks), [--tier0-only] (quick translations that are
    never promoted), and [--no-tier0] (every block pays the full
    optimizing pipeline up front, the pre-tiering behaviour) — and
    reports JIT cycles per mode, promotion/superblock activity, and
    whether client output is bit-identical across all three.

    [metrics] feeds the per-tier cycle metrics into the same flat JSON
    the chaining gate uses ({!Chain_bench.write_json}), so one baseline
    file carries both; [check_current] additionally enforces the tiering
    win itself: tiered JIT cycles must come in below full-pipeline JIT
    cycles with outputs equal. *)

let tiered_options = Vg_core.Session.default_options

let tier0_only_options =
  { Vg_core.Session.default_options with
    promote_threshold = 0;
    superblocks = false }

let full_options =
  { Vg_core.Session.default_options with tier0 = false; superblocks = false }

type row = {
  t_name : string;
  t_jit_tiered : int64;  (** JIT cycles, tiered mode *)
  t_jit_tier0_only : int64;
  t_jit_full : int64;
  t_total_tiered : int64;  (** modelled total cycles, tiered mode *)
  t_total_full : int64;
  t_tier0_made : int;  (** quick translations made (tiered mode) *)
  t_promotions : int;
  t_superblocks : int;
  t_outputs_equal : bool;  (** stdout identical across all three modes *)
}

let run_one ?(scale = 1) (name : string) : row option =
  match Workloads.find name with
  | None ->
      Printf.printf "!! unknown workload %s\n" name;
      None
  | Some w ->
      let img = Workloads.compile ~scale w in
      let run options = Harness.run_tool ~options Vg_core.Tool.nulgrind img in
      let tiered = run tiered_options in
      let t0only = run tier0_only_options in
      let full = run full_options in
      Some
        {
          t_name = name;
          t_jit_tiered = tiered.tr_stats.st_jit_cycles;
          t_jit_tier0_only = t0only.tr_stats.st_jit_cycles;
          t_jit_full = full.tr_stats.st_jit_cycles;
          t_total_tiered = tiered.tr_cycles;
          t_total_full = full.tr_cycles;
          t_tier0_made = tiered.tr_stats.st_translations_tier0;
          t_promotions = tiered.tr_stats.st_promotions;
          t_superblocks = tiered.tr_stats.st_translations_super;
          t_outputs_equal =
            tiered.tr_stdout = full.tr_stdout
            && t0only.tr_stdout = full.tr_stdout;
        }

let rows ?scale () : row list =
  List.filter_map (run_one ?scale) Chain_bench.suite

let pct_less (now : int64) (before : int64) : float =
  if before = 0L then 0.0
  else 100.0 *. (1.0 -. (Int64.to_float now /. Int64.to_float before))

(** The human-readable tier matrix (also what CI posts to the job step
    summary). *)
let run ?scale () =
  Harness.section
    "Tiered JIT: translation cycles per tier (tiered vs tier0-only vs full)";
  Printf.printf "%-9s %11s %11s %11s %6s %6s %6s %6s %5s\n" "program"
    "jit(tier)" "jit(t0)" "jit(full)" "save%" "t0" "promo" "super" "out=";
  Harness.hr ();
  let rs = rows ?scale () in
  List.iter
    (fun r ->
      Printf.printf "%-9s %11Ld %11Ld %11Ld %5.1f%% %6d %6d %6d %5b\n%!"
        r.t_name r.t_jit_tiered r.t_jit_tier0_only r.t_jit_full
        (pct_less r.t_jit_tiered r.t_jit_full)
        r.t_tier0_made r.t_promotions r.t_superblocks r.t_outputs_equal)
    rs;
  Harness.hr ();
  let sum f = List.fold_left (fun a r -> Int64.add a (f r)) 0L rs in
  let jt = sum (fun r -> r.t_jit_tiered) and jf = sum (fun r -> r.t_jit_full) in
  Printf.printf
    "%-9s %11Ld %11s %11Ld %5.1f%%  (gate: tiered < full, outputs equal)\n"
    "total" jt "" jf (pct_less jt jf);
  if Int64.unsigned_compare jt jf >= 0 then
    print_endline "!! tiered JIT cycles did not beat the full pipeline";
  if not (List.for_all (fun r -> r.t_outputs_equal) rs) then
    print_endline "!! tier modes produced different client output"

(* Per-tier metrics for the flat JSON gate file.  The "cycles_" prefix
   puts every entry under the gate's 10% regression tolerance
   automatically. *)
let metrics_of_row (r : row) : (string * int64) list =
  [
    (r.t_name ^ ".cycles_jit_tiered", r.t_jit_tiered);
    (r.t_name ^ ".cycles_jit_tier0_only", r.t_jit_tier0_only);
    (r.t_name ^ ".cycles_jit_full", r.t_jit_full);
    (r.t_name ^ ".cycles_total_tiered", r.t_total_tiered);
    (r.t_name ^ ".tier_promotions", Int64.of_int r.t_promotions);
    (r.t_name ^ ".tier_superblocks", Int64.of_int r.t_superblocks);
    (r.t_name ^ ".tier_outputs_equal", if r.t_outputs_equal then 1L else 0L);
  ]

let metrics ?scale () : (string * int64) list =
  let rs = rows ?scale () in
  let sum f = List.fold_left (fun a r -> Int64.add a (f r)) 0L rs in
  List.concat_map metrics_of_row rs
  @ [
      ("total.cycles_jit_tiered", sum (fun r -> r.t_jit_tiered));
      ("total.cycles_jit_tier0_only", sum (fun r -> r.t_jit_tier0_only));
      ("total.cycles_jit_full", sum (fun r -> r.t_jit_full));
      ( "total.tier_outputs_equal",
        if List.for_all (fun r -> r.t_outputs_equal) rs then 1L else 0L );
    ]

(** The tiering gate proper, over an already-written metrics file:
    tiered JIT cycles must come in strictly below the full-pipeline JIT
    cycles, and every [*.tier_outputs_equal] must be 1.  Exits non-zero
    on failure so CI can gate on it. *)
let check_current ~(current : string) =
  let cur = Chain_bench.read_json current in
  if cur = [] then begin
    Printf.printf "tier gate FAILED: no metrics parsed from %s\n" current;
    exit 1
  end;
  let failures = ref 0 in
  (match
     ( List.assoc_opt "total.cycles_jit_tiered" cur,
       List.assoc_opt "total.cycles_jit_full" cur )
   with
  | Some tiered, Some full ->
      if Int64.unsigned_compare tiered full >= 0 then begin
        incr failures;
        Printf.printf "!! tiered JIT cycles %Ld >= full-pipeline %Ld\n"
          tiered full
      end
      else
        Printf.printf "ok tiered JIT cycles %Ld < full-pipeline %Ld (-%.1f%%)\n"
          tiered full (pct_less tiered full)
  | _ ->
      incr failures;
      print_endline "!! total.cycles_jit_tiered/full missing from metrics");
  List.iter
    (fun (k, v) ->
      let suffix = "tier_outputs_equal" in
      let n = String.length suffix in
      if
        String.length k >= n
        && String.sub k (String.length k - n) n = suffix
        && v = 0L
      then begin
        incr failures;
        Printf.printf "!! %s: tier modes produced different output\n" k
      end)
    cur;
  if !failures > 0 then begin
    Printf.printf "tier gate FAILED: %d problem(s)\n" !failures;
    exit 1
  end
  else print_endline "tier gate passed"
