(** §3.9 experiments: dispatcher behaviour and the chaining ablation.

    The paper reports: fast-lookup hit rate ≈ 98%; the fast path is 14
    instructions; Valgrind does no chaining, yet its no-instrumentation
    slow-down is only 4.3x because the dispatcher is fast — whereas
    Strata's 250-cycle dispatch gave 22.1x without chaining and 4.1x
    with.  We reproduce the hit-rate measurement and both ablations:
    chaining on/off crossed with a cheap (14-cycle) vs expensive
    (250-cycle) dispatcher. *)

let subset = [ "bzip2"; "mcf"; "vpr"; "equake" ]

let run_config ~name ~(opts : Vg_core.Session.options) () =
  let sds =
    List.filter_map
      (fun n ->
        match Workloads.find n with
        | None -> None
        | Some w ->
            let img = Workloads.compile ~scale:1 w in
            let native = Harness.run_native img in
            let tr = Harness.run_tool ~options:opts Vg_core.Tool.nulgrind img in
            Some (Harness.slowdown native tr, tr.tr_stats))
      subset
  in
  let gm = Harness.geomean (List.map fst sds) in
  let hits =
    List.fold_left (fun a (_, st) -> Int64.add a st.Vg_core.Session.st_dispatch_hits) 0L sds
  in
  let misses =
    List.fold_left (fun a (_, st) -> Int64.add a st.Vg_core.Session.st_dispatch_misses) 0L sds
  in
  let chained =
    List.fold_left (fun a (_, st) -> Int64.add a st.Vg_core.Session.st_chained) 0L sds
  in
  let rate =
    let t = Int64.add hits misses in
    if t = 0L then 1.0 else Int64.to_float hits /. Int64.to_float t
  in
  Printf.printf "%-34s %10.2fx   hit-rate %6.2f%%  chained %Ld\n%!" name gm
    (100.0 *. rate) chained

let run () =
  Harness.section "§3.9: dispatcher hit rate and the chaining ablation";
  Printf.printf
    "Nulgrind geometric-mean slow-down over {%s}\nunder four dispatcher \
     configurations:\n\n"
    (String.concat ", " subset);
  (* chaining is on by default now; spell it out per row so the ablation
     axes stay honest *)
  let base = { Vg_core.Session.default_options with chaining = false } in
  run_config ~name:"fast dispatch (14cy), no chaining" ~opts:base ();
  run_config ~name:"fast dispatch (14cy), chaining"
    ~opts:{ base with chaining = true } ();
  run_config ~name:"slow dispatch (250cy), no chaining"
    ~opts:{ base with dispatch_fast_cost = 250 } ();
  run_config ~name:"slow dispatch (250cy), chaining"
    ~opts:{ base with dispatch_fast_cost = 250; chaining = true } ();
  run_config ~name:"fast dispatch, no loop unrolling"
    ~opts:{ base with unroll_loops = false } ();
  Printf.printf
    "\nExpected shape (paper footnote 5): with a ~250-cycle dispatch the\n\
     basic slow-down explodes (Strata: 22.1x) and chaining rescues it\n\
     (4.1x); with Valgrind's 14-instruction dispatcher the no-chaining\n\
     penalty is modest, which is why Valgrind gets away without chaining.\n"
