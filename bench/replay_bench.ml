(** Record/replay benchmark: the Vgrewind overhead gate behind
    [replaycheck].

    Runs each chaining-suite workload under Nulgrind three times — plain,
    recording (the log of non-derivable inputs written as it runs), and
    replaying that log — and reports the modelled-cycle deltas plus the
    log footprint.  The claims the gate enforces:

    - recording charges zero simulated cycles by design, so a recorded
      run must land within 5% of the plain run's wall cycles (it is in
      fact cycle-identical; the gate gives slack so a future
      cost-modelled recorder still passes);
    - a replayed run re-derives the identical cycle count and every
      final-state digest must verify ([Session.replay_mismatches] empty).

    [metrics] folds into the same flat JSON as the chaining, tier and
    AOT gates under a [replay.] prefix, so one baseline carries all of
    them; the replay keys are additive (new keys, no existing key
    changes). *)

type row = {
  r_name : string;
  r_cycles_plain : int64;
  r_cycles_record : int64;
  r_cycles_replay : int64;
  r_log_bytes : int;
  r_events : int;
  r_verified : bool;  (** every replay digest matched *)
}

let overhead_pm (r : row) : int64 =
  if r.r_cycles_plain = 0L then 0L
  else
    Int64.of_float
      (1000.0
      *. (Int64.to_float r.r_cycles_record /. Int64.to_float r.r_cycles_plain
        -. 1.0))

let run_one ?(scale = 1) (name : string) : row option =
  match Workloads.find name with
  | None ->
      Printf.printf "!! unknown workload %s\n" name;
      None
  | Some w ->
      let img = Workloads.compile ~scale w in
      let plain = Harness.run_tool Vg_core.Tool.nulgrind img in
      let rec_ = Replay.recorder () in
      Replay.set_header rec_ ~tool:"nulgrind" ~cores:1;
      let recorded =
        Harness.run_tool
          ~options:
            { Vg_core.Session.default_options with rr = Replay.Record rec_ }
          Vg_core.Tool.nulgrind img
      in
      let data = Replay.to_string rec_ in
      let p = Replay.player_of_string data in
      let replayed =
        Harness.run_tool
          ~options:
            { Vg_core.Session.default_options with rr = Replay.Replay p }
          Vg_core.Tool.nulgrind img
      in
      Some
        {
          r_name = name;
          r_cycles_plain = plain.tr_cycles;
          r_cycles_record = recorded.tr_cycles;
          r_cycles_replay = replayed.tr_cycles;
          r_log_bytes = String.length data;
          r_events = Replay.n_events rec_;
          r_verified =
            Vg_core.Session.replay_mismatches replayed.tr_session = []
            && recorded.tr_stdout = plain.tr_stdout
            && replayed.tr_stdout = plain.tr_stdout;
        }

let rows ?scale () : row list =
  List.filter_map (run_one ?scale) Chain_bench.suite

(** The human-readable record/replay table. *)
let run ?scale () =
  Harness.section
    "Vgrewind: record/replay wall cycles, log footprint, digest verification";
  Printf.printf "%-9s %13s %13s %13s %7s %9s %7s %5s\n" "program" "plain"
    "record" "replay" "ovh_pm" "log(B)" "events" "ok";
  Harness.hr ();
  let rs = rows ?scale () in
  List.iter
    (fun r ->
      Printf.printf "%-9s %13Ld %13Ld %13Ld %7Ld %9d %7d %5b\n%!" r.r_name
        r.r_cycles_plain r.r_cycles_record r.r_cycles_replay (overhead_pm r)
        r.r_log_bytes r.r_events r.r_verified)
    rs;
  Harness.hr ();
  print_endline
    "(gate: record within 5% of plain, replay cycle-identical, all digests \
     verified)";
  if List.exists (fun r -> overhead_pm r > 50L) rs then
    print_endline "!! recording overhead exceeded 5%";
  if List.exists (fun r -> r.r_cycles_replay <> r.r_cycles_record) rs then
    print_endline "!! replay did not re-derive the recorded cycle count";
  if not (List.for_all (fun r -> r.r_verified) rs) then
    print_endline "!! replay digest verification failed"

(* Metrics for the flat JSON gate file.  The "replay." prefix keeps them
   out of the chain gate's first-dot "cycles_" heuristic: they are gated
   by [check_current] below instead, and ride into the baseline
   additively. *)
let metrics_of_row (r : row) : (string * int64) list =
  [
    ("replay." ^ r.r_name ^ ".cycles_plain", r.r_cycles_plain);
    ("replay." ^ r.r_name ^ ".cycles_record", r.r_cycles_record);
    ("replay." ^ r.r_name ^ ".cycles_replay", r.r_cycles_replay);
    ("replay." ^ r.r_name ^ ".log_bytes", Int64.of_int r.r_log_bytes);
    ("replay." ^ r.r_name ^ ".events", Int64.of_int r.r_events);
    ("replay." ^ r.r_name ^ ".verified", if r.r_verified then 1L else 0L);
    ("replay." ^ r.r_name ^ ".overhead_pm", overhead_pm r);
  ]

let metrics ?scale () : (string * int64) list =
  List.concat_map metrics_of_row (rows ?scale ())

(** The record/replay gate, over an already-written metrics file: per
    workload, recording overhead must stay under 5% (50 per mille) of
    plain wall cycles, the replayed run must re-derive the recorded
    cycle count exactly, and every digest must have verified.  Exits
    non-zero on failure so CI can gate on it. *)
let check_current ~(current : string) =
  let cur = Chain_bench.read_json current in
  let replay_keys =
    List.filter
      (fun (k, _) -> String.length k > 7 && String.sub k 0 7 = "replay.")
      cur
  in
  if replay_keys = [] then begin
    Printf.printf "replay gate FAILED: no replay.* metrics in %s\n" current;
    exit 1
  end;
  let failures = ref 0 in
  List.iter
    (fun (k, v) ->
      let suffix_is s =
        let n = String.length s in
        String.length k >= n && String.sub k (String.length k - n) n = s
      in
      if suffix_is ".cycles_plain" then begin
        let prefix =
          String.sub k 0 (String.length k - String.length ".cycles_plain")
        in
        (match List.assoc_opt (prefix ^ ".cycles_record") cur with
        | None ->
            incr failures;
            Printf.printf "!! %s: no matching cycles_record metric\n" prefix
        | Some rc ->
            let limit = Int64.of_float (Int64.to_float v *. 1.05) in
            if Int64.unsigned_compare rc limit > 0 then begin
              incr failures;
              Printf.printf "!! %s: recording overhead %Ld > %Ld (+5%%)\n"
                prefix rc limit
            end
            else Printf.printf "ok %s: record %Ld vs plain %Ld\n" prefix rc v);
        match
          ( List.assoc_opt (prefix ^ ".cycles_record") cur,
            List.assoc_opt (prefix ^ ".cycles_replay") cur )
        with
        | Some rc, Some rp when rc <> rp ->
            incr failures;
            Printf.printf "!! %s: replay cycles %Ld <> recorded %Ld\n" prefix
              rp rc
        | _ -> ()
      end
      else if suffix_is ".verified" && v = 0L then begin
        incr failures;
        Printf.printf "!! %s: replay digest verification failed\n" k
      end)
    replay_keys;
  if !failures > 0 then begin
    Printf.printf "replay gate FAILED: %d problem(s)\n" !failures;
    exit 1
  end
  else print_endline "replay gate passed"
