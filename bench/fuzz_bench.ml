(** Vgfuzz throughput: how fast the differential oracle burns through
    generated programs.

    Two rates matter for sizing the CI sweep budget: raw generation
    (seed -> assembled image) and the full five-way differential check
    (native + four session variants under the witness tool).  No gate —
    the numbers contextualise the [--count] the CI job can afford. *)

let run ?(count = 60) () =
  Printf.printf "\n== vgfuzz throughput (count=%d) ==\n%!" count;
  let gen_t0 = Sys.time () in
  for i = 0 to count - 1 do
    ignore
      (Fuzz.Gen.image ~faulty:(i mod 10 = 9) ~seed:(9000 + i)
         ~size:(1 + (i mod 20)) ())
  done;
  let gen_dt = Sys.time () -. gen_t0 in
  Printf.printf "  generate+assemble: %6.0f programs/s\n%!"
    (float_of_int count /. gen_dt);
  let chk_t0 = Sys.time () in
  let divergent = ref 0 in
  for i = 0 to count - 1 do
    let img =
      Fuzz.Gen.image ~faulty:(i mod 10 = 9) ~seed:(9000 + i)
        ~size:(1 + (i mod 20)) ()
    in
    if Fuzz.Diff.check img <> [] then incr divergent
  done;
  let chk_dt = Sys.time () -. chk_t0 in
  Printf.printf "  differential check: %5.1f programs/s (%d divergent)\n%!"
    (float_of_int count /. chk_dt)
    !divergent;
  Printf.printf "  a 2000-program CI sweep at this rate: ~%.0f s\n%!"
    (2000.0 /. (float_of_int count /. chk_dt))
