(** Regenerate Table 2: slow-down factors of Nulgrind, ICntI, ICntC and
    Memcheck over the SPEC-shaped suite, with geometric means, against
    the paper's published factors.

    Native "time" is the native engine's deterministic cycle count;
    each tool's time is the Valgrind engine's total cycles (host code +
    dispatch + JIT + SMC checks).  Absolute numbers are simulator
    artefacts; the claims under test are the ordering and rough
    magnitudes: Nulgrind a few x, inline counting cheaper than C-call
    counting, Memcheck ~5x Nulgrind (paper: 4.3 / 8.8 / 13.5 / 22.1).

    All runs here pin [chaining = false]: the paper's Valgrind does not
    chain translations (§3.9), so Table 2's published slow-downs were
    measured with every block transfer going through the dispatcher.
    The chaining extension is measured separately by chain_bench. *)

(* the paper's dispatcher configuration, without the chaining extension *)
let paper_options = { Vg_core.Session.default_options with chaining = false }

(* the paper's Table 2 per-program slow-downs, for side-by-side output *)
let paper_numbers =
  [
    ("bzip2", (3.5, 7.2, 10.5, 16.1));
    ("crafty", (6.9, 12.3, 22.5, 36.0));
    ("eon", (7.5, 11.8, 21.0, 51.4));
    ("gap", (4.0, 9.1, 13.5, 25.5));
    ("gcc", (5.3, 9.0, 14.1, 39.0));
    ("gzip", (3.2, 5.9, 9.0, 14.7));
    ("mcf", (2.0, 3.5, 5.4, 7.0));
    ("parser", (3.6, 7.0, 10.4, 17.8));
    ("perlbmk", (4.8, 9.6, 14.6, 27.1));
    ("twolf", (3.1, 6.5, 10.7, 16.0));
    ("vortex", (6.5, 11.4, 17.8, 38.7));
    ("vpr", (4.1, 7.7, 11.3, 16.4));
    ("ammp", (3.4, 6.5, 9.1, 32.7));
    ("applu", (5.2, 14.1, 28.1, 19.7));
    ("apsi", (3.4, 8.2, 12.5, 16.4));
    ("art", (4.7, 9.4, 13.7, 24.0));
    ("equake", (3.8, 8.4, 12.4, 17.1));
    ("lucas", (3.7, 7.1, 10.8, 24.8));
    ("mesa", (5.9, 10.3, 15.9, 57.9));
    ("mgrid", (3.5, 9.8, 14.4, 16.9));
    ("swim", (3.2, 11.9, 15.3, 10.7));
    ("wupwise", (7.4, 11.8, 17.3, 26.7));
  ]

type row = {
  r_name : string;
  r_native : int64;
  r_nulg : float;
  r_icnti : float;
  r_icntc : float;
  r_memc : float;
}

let tools () =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
    ("memcheck", Tools.Memcheck.tool);
  ]

let run_program ?(scale = 1) (w : Workloads.workload) : row =
  let img = Workloads.compile ~scale w in
  let native = Harness.run_native img in
  let sd tool =
    let tr = Harness.run_tool ~options:paper_options tool img in
    if tr.tr_stdout <> native.nr_stdout then
      Printf.printf "!! %s under %s produced different output\n" w.w_name
        tool.Vg_core.Tool.name;
    Harness.slowdown native tr
  in
  let factors = List.map (fun (_, t) -> sd t) (tools ()) in
  match factors with
  | [ n; i; c; m ] ->
      {
        r_name = w.w_name;
        r_native = native.nr_cycles;
        r_nulg = n;
        r_icnti = i;
        r_icntc = c;
        r_memc = m;
      }
  | _ -> assert false

let run ?(scale = 1) ?(programs = []) () =
  Harness.section
    "Table 2: slow-down factors on the SPEC-shaped suite (ours vs paper)";
  let suite =
    match programs with
    | [] -> Workloads.all
    | names -> List.filter_map Workloads.find names
  in
  Printf.printf "%-9s %12s | %-29s| %s\n" "" "" "measured (this repro)"
    "paper (Table 2)";
  Printf.printf "%-9s %12s |%6s %6s %6s %7s |%6s %6s %6s %7s\n" "program"
    "native cyc" "Nulg." "ICntI" "ICntC" "Memch." "Nulg." "ICntI" "ICntC"
    "Memch.";
  Harness.hr ();
  let rows =
    List.map
      (fun w ->
        let r = run_program ~scale w in
        (match List.assoc_opt r.r_name paper_numbers with
        | Some (pn, pi, pc, pm) ->
            Printf.printf "%-9s %12Ld |%6.1f %6.1f %6.1f %7.1f |%6.1f %6.1f %6.1f %7.1f\n%!"
              r.r_name r.r_native r.r_nulg r.r_icnti r.r_icntc r.r_memc pn pi
              pc pm
        | None ->
            Printf.printf "%-9s %12Ld |%6.1f %6.1f %6.1f %7.1f |\n%!" r.r_name
              r.r_native r.r_nulg r.r_icnti r.r_icntc r.r_memc);
        r)
      suite
  in
  Harness.hr ();
  let gm f = Harness.geomean (List.map f rows) in
  Printf.printf "%-9s %12s |%6.1f %6.1f %6.1f %7.1f |%6.1f %6.1f %6.1f %7.1f\n"
    "geo.mean" ""
    (gm (fun r -> r.r_nulg))
    (gm (fun r -> r.r_icnti))
    (gm (fun r -> r.r_icntc))
    (gm (fun r -> r.r_memc))
    4.3 8.8 13.5 22.1;
  Printf.printf
    "\nShape checks: Nulgrind < ICntI < ICntC < Memcheck per program: %b;\n\
     Memcheck/Nulgrind ratio %.1f (paper %.1f).\n"
    (List.for_all
       (fun r -> r.r_nulg < r.r_icnti && r.r_icnti < r.r_icntc && r.r_icntc < r.r_memc)
       rows)
    (gm (fun r -> r.r_memc) /. gm (fun r -> r.r_nulg))
    (22.1 /. 4.3);
  (* extension: --track-origins (a second shadow plane) on a subset *)
  let subset = [ "bzip2"; "mcf"; "perlbmk"; "ammp" ] in
  let origin_pairs =
    List.filter_map
      (fun n ->
        match Workloads.find n with
        | None -> None
        | Some w ->
            let img = Workloads.compile ~scale w in
            let native = Harness.run_native img in
            let mc = Harness.run_tool ~options:paper_options Tools.Memcheck.tool img in
            let mo =
              Harness.run_tool ~options:paper_options Tools.Memcheck.tool_origins
                img
            in
            Some (Harness.slowdown native mc, Harness.slowdown native mo))
      subset
  in
  Printf.printf
    "\nExtension (--track-origins, a second shadow plane) over {%s}:\n\
     memcheck %.1fx -> memcheck-origins %.1fx (the real tool's origin\n\
     tracking likewise costs roughly another 2x).\n"
    (String.concat ", " subset)
    (Harness.geomean (List.map fst origin_pairs))
    (Harness.geomean (List.map snd origin_pairs))
