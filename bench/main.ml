(** Benchmark harness entry point: regenerates every table and figure of
    the paper's evaluation (see DESIGN.md's per-experiment index).

    {v
    dune exec bench/main.exe             # everything (a few minutes)
    dune exec bench/main.exe -- table2 --scale 2 --programs bzip2,mcf
    dune exec bench/main.exe -- fig1 fig2 fig3 table1 dispatch caa \
                                transtab loc micro
    v} *)

let usage () =
  print_endline
    "usage: main.exe \
     [fig1|fig2|fig3|table1|table2|dispatch|chain|tier|aot|cores|replay|chainjson|chaincheck|tiercheck|aotcheck|corescheck|replaycheck|caa|transtab|loc|micro|fuzz|all]*";
  print_endline "       table2 options: --scale N --programs a,b,c";
  print_endline "       chainjson options: --out FILE";
  print_endline "       chaincheck/tiercheck options: --baseline FILE --out FILE";
  exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1 in
  let programs = ref [] in
  let out = ref "BENCH_pr.json" in
  let baseline = ref "BENCH_baseline.json" in
  let cmds = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
        scale := int_of_string n;
        parse rest
    | "--programs" :: ps :: rest ->
        programs := String.split_on_char ',' ps;
        parse rest
    | "--out" :: p :: rest ->
        out := p;
        parse rest
    | "--baseline" :: p :: rest ->
        baseline := p;
        parse rest
    | "--help" :: _ | "-h" :: _ -> usage ()
    | cmd :: rest ->
        cmds := cmd :: !cmds;
        parse rest
  in
  parse args;
  let cmds = match List.rev !cmds with [] -> [ "all" ] | l -> l in
  let run_cmd = function
    | "fig1" -> Figures.fig1 ()
    | "fig2" -> Figures.fig2 ()
    | "fig3" -> Figures.fig3 ()
    | "table1" -> Table1.run ()
    | "table2" -> Table2.run ~scale:!scale ~programs:!programs ()
    | "dispatch" -> Dispatch_bench.run ()
    | "chain" -> Chain_bench.run ~scale:!scale ()
    | "tier" -> Tier_bench.run ~scale:!scale ()
    | "aot" -> Aot_bench.run ~scale:!scale ()
    | "cores" -> Cores_bench.run ()
    | "replay" -> Replay_bench.run ~scale:!scale ()
    | "chainjson" ->
        Chain_bench.write_json ~path:!out ~scale:!scale
          ~extra:
            (Tier_bench.metrics ~scale:!scale ()
            @ Aot_bench.metrics ~scale:!scale ()
            @ Cores_bench.metrics ()
            @ Replay_bench.metrics ~scale:!scale ())
          ()
    | "chaincheck" -> Chain_bench.check ~baseline:!baseline ~current:!out
    | "tiercheck" ->
        Chain_bench.check ~baseline:!baseline ~current:!out;
        Tier_bench.check_current ~current:!out
    | "aotcheck" ->
        Chain_bench.check ~baseline:!baseline ~current:!out;
        Aot_bench.check_current ~current:!out
    | "corescheck" -> Cores_bench.check ()
    | "replaycheck" -> Replay_bench.check_current ~current:!out
    | "caa" -> Caa_bench.run ()
    | "transtab" -> Transtab_bench.run ()
    | "loc" -> Loc_bench.run ()
    | "micro" -> Micro.run ()
    | "fuzz" -> Fuzz_bench.run ()
    | "all" ->
        Figures.fig1 ();
        Figures.fig2 ();
        Figures.fig3 ();
        Table1.run ();
        Table2.run ~scale:!scale ~programs:!programs ();
        Dispatch_bench.run ();
        Chain_bench.run ~scale:!scale ();
        Tier_bench.run ~scale:!scale ();
        Aot_bench.run ~scale:!scale ();
        Cores_bench.run ();
        Replay_bench.run ~scale:!scale ();
        Caa_bench.run ();
        Transtab_bench.run ();
        Loc_bench.run ();
        Micro.run ();
        Fuzz_bench.run ()
    | c ->
        Printf.printf "unknown command '%s'\n" c;
        usage ()
  in
  List.iter run_cmd cmds
