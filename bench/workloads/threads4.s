; Four-thread compute workload for the cores-matrix CI job: main spawns
; three compute-bound workers (pinned to cores 1..3 under --cores 4),
; runs its own loop, then spin-waits on the workers' done counter.
; Kept in sync with the inline copy in bench/cores_bench.ml; the
; committed golden bench/workloads/threads4_stats_golden.json is this program's
; --tool=lackey --cores=2 --stats=json output.
        .text
        .global _start
_start: movi r7, 0            ; worker index 0..2
spawn:  movi r1, worker
        movi r2, stacks
        mov r3, r7
        inc r3
        muli r3, 4096
        add r2, r3
        subi r2, 4
        movi r3, 0
        movi r0, 15           ; thread_create
        syscall
        inc r7
        cmpi r7, 3
        jne spawn
        movi r5, 3000
mloop:  dec r5
        jne mloop
mwait:  movi r0, 17           ; yield
        syscall
        movi r3, ndone
        ldw r4, [r3]
        cmpi r4, 3
        jne mwait
        movi r0, 1
        movi r1, 0
        syscall
worker: movi r5, 3000
wloop:  dec r5
        jne wloop
        movi r3, ndone
        ldw r4, [r3]
        inc r4
        stw [r3], r4
        movi r0, 16           ; thread_exit
        syscall
        .data
ndone:  .word 0
        .align 4
stacks: .space 12288
