(** Multi-core scheduling benchmark: the cores matrix behind the
    [cores-matrix] CI job.

    The sharded scheduler interleaves simulated cores on cycle counts
    (lowest clock steps next, ties to the lowest core id), so execution
    is bit-identical for any [--cores N] — a single-threaded client only
    ever touches core 0, and a threaded client replays exactly at a
    fixed core count.  [check] enforces both halves of that contract
    across the full tool corpus at 1/2/4 cores, plus the point of the
    whole refactor: a 4-thread workload's wall clock (max core clock)
    must actually drop when given 4 cores.

    [metrics] feeds the deterministic cycle numbers into the same flat
    JSON the chaining gate uses ({!Chain_bench.write_json}), so the
    committed baseline also pins the cores=1 scheduler overhead and the
    4-core wall-cycle win. *)

let core_counts = [ 1; 2; 4 ]

(* The full tool corpus (the same 11 tools the vgchaos sweep covers). *)
let tools : (string * Vg_core.Tool.t) list =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("memcheck", Tools.Memcheck.tool);
    ("memcheck-origins", Tools.Memcheck.tool_origins);
    ("cachegrind", Tools.Cachegrind.tool);
    ("massif", Tools.Massif.tool);
    ("lackey", Tools.Lackey.tool);
    ("taintgrind", Tools.Taintgrind.tool);
    ("annelid", Tools.Annelid.tool);
    ("redux", Tools.Redux.tool);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
  ]

(* Main spawns three compute-bound workers (threads 2..4 land on cores
   1..3 under --cores 4), runs its own compute loop, then spin-waits on
   the workers' done counter.  Also committed as bench/threads4.s for
   the driver-level --stats=json golden diff in CI. *)
let threads4_src =
  {|
        .text
        .global _start
_start: movi r7, 0            ; worker index 0..2
spawn:  movi r1, worker
        movi r2, stacks
        mov r3, r7
        inc r3
        muli r3, 4096
        add r2, r3
        subi r2, 4
        movi r3, 0
        movi r0, 15           ; thread_create
        syscall
        inc r7
        cmpi r7, 3
        jne spawn
        movi r5, 3000
mloop:  dec r5
        jne mloop
mwait:  movi r0, 17           ; yield
        syscall
        movi r3, ndone
        ldw r4, [r3]
        cmpi r4, 3
        jne mwait
        movi r0, 1
        movi r1, 0
        syscall
worker: movi r5, 3000
wloop:  dec r5
        jne wloop
        movi r3, ndone
        ldw r4, [r3]
        inc r4
        stw [r3], r4
        movi r0, 16           ; thread_exit
        syscall
        .data
ndone:  .word 0
        .align 4
stacks: .space 12288
|}

let threads4_img () = Guest.Asm.assemble threads4_src

let run_at ~(cores : int) (tool : Vg_core.Tool.t) (img : Guest.Image.t) :
    Harness.tool_result =
  Harness.run_tool
    ~options:{ Vg_core.Session.default_options with cores }
    tool img

(* ------------------------------------------------------------------ *)
(* The human-readable cores matrix (what CI posts to the step summary)  *)
(* ------------------------------------------------------------------ *)

let run () =
  Harness.section
    "Sharded scheduler: 4-thread workload, wall cycles by core count";
  Printf.printf "%-6s %13s %13s %9s %8s %6s\n" "cores" "wall" "total(work)"
    "handoffs" "speedup" "out=";
  Harness.hr ();
  let img = threads4_img () in
  let base = run_at ~cores:1 Vg_core.Tool.nulgrind img in
  List.iter
    (fun cores ->
      let r = run_at ~cores Vg_core.Tool.nulgrind img in
      Printf.printf "%-6d %13Ld %13Ld %9Ld %7.2fx %6b\n%!" cores
        r.tr_stats.st_wall_cycles r.tr_stats.st_total_cycles
        r.tr_stats.st_lock_handoffs
        (Int64.to_float base.tr_stats.st_wall_cycles
        /. Int64.to_float r.tr_stats.st_wall_cycles)
        (r.tr_stdout = base.tr_stdout))
    core_counts;
  Harness.hr ();
  print_endline
    "(wall = max core clock; total = aggregate work cycles across cores)"

(* ------------------------------------------------------------------ *)
(* Metrics for the flat JSON gate file                                  *)
(* ------------------------------------------------------------------ *)

(* "cycles_" prefixed keys get the gate's 10% regression tolerance; the
   cores=1 row doubles as the scheduler-overhead pin demanded by the
   sharded-scheduler acceptance bar. *)
let metrics () : (string * int64) list =
  let img = threads4_img () in
  let runs =
    List.map (fun c -> (c, run_at ~cores:c Vg_core.Tool.nulgrind img)) core_counts
  in
  let base = List.assoc 1 runs in
  List.concat_map
    (fun (c, r) ->
      [
        (Printf.sprintf "threads4.cycles_wall_c%d" c, r.Harness.tr_stats.st_wall_cycles);
        (Printf.sprintf "threads4.cycles_work_c%d" c, r.tr_stats.st_total_cycles);
        (Printf.sprintf "threads4.handoffs_c%d" c, r.tr_stats.st_lock_handoffs);
      ])
    runs
  @ [
      ( "threads4.cycles_sched_overhead_c1",
        base.Harness.tr_stats.st_overhead_cycles );
      ( "threads4.cores_outputs_equal",
        if
          List.for_all
            (fun (_, r) -> r.Harness.tr_stdout = base.Harness.tr_stdout)
            runs
        then 1L
        else 0L );
    ]

(* ------------------------------------------------------------------ *)
(* The corpus matrix gate                                               *)
(* ------------------------------------------------------------------ *)

(* Transparency across core counts: for every tool, client stdout, exit
   reason and the full tool output (event totals included) must be
   bit-identical at 1, 2 and 4 cores — on a single-threaded corpus
   workload (which must not even notice the extra cores) and on the
   4-thread workload (where scheduling genuinely spreads across cores
   but cycle-count interleaving keeps it deterministic). *)
let check () =
  let failures = ref 0 in
  let matrix (wname : string) (img : Guest.Image.t) =
    List.iter
      (fun (tname, tool) ->
        let base = run_at ~cores:1 tool img in
        let base_tool_out =
          Vg_core.Session.tool_output base.Harness.tr_session
        in
        List.iter
          (fun cores ->
            let r = run_at ~cores tool img in
            let bad fmt =
              incr failures;
              Printf.printf "!! %s/%s cores=%d: %s\n" wname tname cores fmt
            in
            if r.Harness.tr_stdout <> base.Harness.tr_stdout then
              bad "client stdout diverged from cores=1";
            if
              Vg_core.Session.tool_output r.Harness.tr_session
              <> base_tool_out
            then bad "tool output diverged from cores=1")
          (List.filter (fun c -> c <> 1) core_counts))
      tools;
    Printf.printf "ok %s: %d tools bit-identical at cores %s\n%!" wname
      (List.length tools)
      (String.concat "/" (List.map string_of_int core_counts))
  in
  (match Workloads.find "mcf" with
  | Some w -> matrix "mcf" (Workloads.compile ~scale:1 w)
  | None ->
      incr failures;
      print_endline "!! corpus workload mcf missing");
  let img = threads4_img () in
  matrix "threads4" img;
  (* the speedup itself: 4 cores must beat 1 core on the wall clock by
     at least 2x for a 4-thread compute-bound workload *)
  let w1 = (run_at ~cores:1 Vg_core.Tool.nulgrind img).Harness.tr_stats in
  let w4 = (run_at ~cores:4 Vg_core.Tool.nulgrind img).Harness.tr_stats in
  if
    Int64.unsigned_compare (Int64.mul w4.st_wall_cycles 2L) w1.st_wall_cycles
    >= 0
  then begin
    incr failures;
    Printf.printf "!! 4-core wall %Ld not 2x under 1-core wall %Ld\n"
      w4.st_wall_cycles w1.st_wall_cycles
  end
  else
    Printf.printf "ok threads4 wall cycles: %Ld @1 core -> %Ld @4 cores\n"
      w1.st_wall_cycles w4.st_wall_cycles;
  if !failures > 0 then begin
    Printf.printf "cores gate FAILED: %d problem(s)\n" !failures;
    exit 1
  end
  else print_endline "cores gate passed"
